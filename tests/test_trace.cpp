// End-to-end invocation tracing (docs/observability.md): the wire-header
// trace extension, context propagation through every pipeline stage, the
// retry/invalidation events, sampling steering (global / per-context /
// per-GP, innermost wins), the per-thread ring buffer, and the exporters.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "ohpx/capability/builtin/authentication.hpp"
#include "ohpx/capability/builtin/checksum.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/protocol/relay.hpp"
#include "ohpx/runtime/migration.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/echo.hpp"
#include "ohpx/trace/export.hpp"
#include "ohpx/trace/trace.hpp"
#include "ohpx/transport/channel.hpp"
#include "ohpx/wire/message.hpp"

namespace ohpx {
namespace {

using scenario::EchoPointer;
using scenario::EchoServant;

std::vector<trace::SpanRecord> spans_named(const trace::TraceSnapshot& snap,
                                           std::string_view name) {
  std::vector<trace::SpanRecord> out;
  for (const auto& span : snap.spans) {
    if (std::string_view(span.name) == name) out.push_back(span);
  }
  return out;
}

bool one_trace_id(const trace::TraceSnapshot& snap) {
  if (snap.spans.empty()) return false;
  for (const auto& span : snap.spans) {
    if (span.trace_hi != snap.spans.front().trace_hi ||
        span.trace_lo != snap.spans.front().trace_lo) {
      return false;
    }
  }
  return true;
}

// ---- wire-header extension --------------------------------------------------------

TEST(TraceWire, ExtensionRoundTrips) {
  wire::MessageHeader header;
  header.type = wire::MessageType::request;
  header.request_id = 7;
  header.object_id = 42;
  header.method_or_code = 3;
  header.flags |= wire::kFlagTraceContext;
  header.trace_hi = 0x0123456789abcdefull;
  header.trace_lo = 0xfedcba9876543210ull;
  header.trace_parent_span = 0x1122334455667788ull;
  header.trace_flags = wire::kTraceFlagSampled;

  const Bytes body = {1, 2, 3};
  const wire::Buffer frame = wire::encode_frame(header, body);
  EXPECT_EQ(frame.size(),
            wire::kHeaderSize + wire::kTraceExtensionSize + body.size());

  BytesView decoded_body;
  const wire::MessageHeader decoded =
      wire::decode_frame(frame.view(), decoded_body);
  EXPECT_EQ(decoded, header);
  EXPECT_TRUE(decoded.has_trace());
  ASSERT_EQ(decoded_body.size(), body.size());
  EXPECT_EQ(decoded_body[0], 1u);
}

TEST(TraceWire, NoExtensionWithoutTheFlag) {
  wire::MessageHeader header;
  header.trace_hi = 0xdeadull;  // ignored: the flag is not set
  const wire::Buffer frame = wire::encode_frame(header, Bytes{9});
  EXPECT_EQ(frame.size(), wire::kHeaderSize + 1);

  BytesView body;
  const wire::MessageHeader decoded = wire::decode_frame(frame.view(), body);
  EXPECT_FALSE(decoded.has_trace());
  EXPECT_EQ(decoded.trace_hi, 0u);
}

TEST(TraceWire, TruncatedExtensionThrows) {
  wire::MessageHeader header;
  header.flags |= wire::kFlagTraceContext;
  header.trace_hi = 1;
  const wire::Buffer frame = wire::encode_frame(header, Bytes{});
  BytesView whole = frame.view();
  BytesView body;
  EXPECT_THROW(
      wire::decode_frame(whole.subspan(0, wire::kHeaderSize + 3), body),
      WireError);
}

// ---- pipeline propagation ---------------------------------------------------------

// One LAN, client and server on different machines, so nexus-tcp carries
// every call (the shm fast path would hide the wire propagation).
class TraceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::TraceSink::global().set_sampling(trace::Sampling::always);
    trace::TraceSink::global().clear();

    lan_ = world_.add_lan("lan");
    m_client_ = world_.add_machine("client", lan_);
    m_server_ = world_.add_machine("server-a", lan_);
    m_server2_ = world_.add_machine("server-b", lan_);
    client_ctx_ = &world_.create_context(m_client_);
    server_ctx_ = &world_.create_context(m_server_);
  }

  void TearDown() override {
    trace::TraceSink::global().set_sampling(trace::Sampling::off);
    trace::TraceSink::global().clear();
  }

  runtime::World world_;
  netsim::LanId lan_{};
  netsim::MachineId m_client_{}, m_server_{}, m_server2_{};
  orb::Context* client_ctx_ = nullptr;
  orb::Context* server_ctx_ = nullptr;
};

TEST_F(TraceFixture, EveryPipelineStageUnderOneTraceId) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .nexus()
                 .build();
  EchoPointer gp(*client_ctx_, ref);
  gp->ping();

  const trace::TraceSnapshot snap = trace::TraceSink::global().snapshot();
  EXPECT_TRUE(one_trace_id(snap));
  for (const char* name : {"rmi.invoke", "select", "wire.encode",
                           "wire.decode", "transport", "proto.nexus",
                           "server.dispatch", "servant.dispatch"}) {
    EXPECT_EQ(spans_named(snap, name).size(), 1u) << name;
  }

  // Parentage: the server pipeline hangs under the client's call span
  // (the wire extension carries the invoke span as the parent), and the
  // servant sits under server dispatch.
  const auto invoke = spans_named(snap, "rmi.invoke").front();
  const auto server = spans_named(snap, "server.dispatch").front();
  const auto servant = spans_named(snap, "servant.dispatch").front();
  EXPECT_EQ(invoke.parent_span, 0u) << "the invoke span is the root";
  EXPECT_EQ(server.parent_span, invoke.span_id);
  EXPECT_EQ(servant.parent_span, server.span_id);
  EXPECT_EQ(spans_named(snap, "select").front().parent_span, invoke.span_id);
}

TEST_F(TraceFixture, DisabledTracingRecordsNothing) {
  trace::TraceSink::global().set_sampling(trace::Sampling::off);
  EXPECT_FALSE(trace::TraceSink::active());

  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .nexus()
                 .build();
  EchoPointer gp(*client_ctx_, ref);
  gp->ping();
  EXPECT_TRUE(trace::TraceSink::global().snapshot().spans.empty());
}

TEST_F(TraceFixture, MigrationReselectionStaysInOneTrace) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .nexus()
                 .build();
  EchoPointer gp(*client_ctx_, ref);
  gp->ping();  // warm the selection cache

  orb::Context& new_home = world_.create_context(m_server2_);
  runtime::migrate_shared(ref.object_id(), *server_ctx_, new_home);

  trace::TraceSink::global().clear();
  gp->ping();

  const trace::TraceSnapshot snap = trace::TraceSink::global().snapshot();
  EXPECT_TRUE(one_trace_id(snap))
      << "re-selection after migration must stay inside the call's trace";
  const auto invalidations = spans_named(snap, "cache.invalidate");
  ASSERT_EQ(invalidations.size(), 1u);
  EXPECT_EQ(invalidations.front().kind, trace::SpanKind::event);

  const auto selects = spans_named(snap, "select");
  ASSERT_EQ(selects.size(), 1u);
  EXPECT_NE(std::string_view(selects.front().annotation).find("cache:miss"),
            std::string_view::npos);
}

TEST_F(TraceFixture, TransportRetryKeepsTheTraceId) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .nexus()
                 .build();
  EchoPointer gp(*client_ctx_, ref);
  gp->ping();  // warm the selection cache

  // Make the server endpoint fail exactly once: the cached selection hits
  // a TransportError, CallCore drops the cache entry and retries — all
  // inside the same rmi.invoke span, so the trace shows both attempts.
  auto& registry = transport::EndpointRegistry::instance();
  const std::string endpoint = server_ctx_->endpoint_name();
  const transport::FrameHandler original = registry.lookup(endpoint);
  auto failed_once = std::make_shared<bool>(false);
  registry.bind(endpoint,
                [original, failed_once](const wire::Buffer& frame) {
                  if (!*failed_once) {
                    *failed_once = true;
                    throw TransportError(ErrorCode::transport_closed,
                                         "injected endpoint failure");
                  }
                  return original(frame);
                });

  trace::TraceSink::global().clear();
  EXPECT_EQ(gp->ping(), 2u);
  registry.bind(endpoint, original);

  const trace::TraceSnapshot snap = trace::TraceSink::global().snapshot();
  EXPECT_TRUE(one_trace_id(snap));
  EXPECT_EQ(spans_named(snap, "rmi.invoke").size(), 1u)
      << "the retry happens inside the original call span";
  EXPECT_EQ(spans_named(snap, "retry.transport").size(), 1u);
  EXPECT_EQ(spans_named(snap, "select").size(), 2u)
      << "failed attempt + re-selection";
  EXPECT_EQ(spans_named(snap, "servant.dispatch").size(), 1u);
}

TEST_F(TraceFixture, GluedCallRecordsCapabilitySpansInTheSameTrace) {
  auto auth = std::make_shared<cap::AuthenticationCapability>(
      crypto::Key128::from_seed(0x7ace), "tracer", cap::Scope::always);
  auto checksum = std::make_shared<cap::ChecksumCapability>();
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({auth, checksum})
                 .build();
  EchoPointer gp(*client_ctx_, ref);

  trace::TraceSink::global().clear();
  gp->ping();

  const trace::TraceSnapshot snap = trace::TraceSink::global().snapshot();
  EXPECT_TRUE(one_trace_id(snap));
  // Client chain: process auth+checksum out, unprocess back; server chain
  // mirrors it — four of each per roundtrip.
  EXPECT_EQ(spans_named(snap, "cap.process").size(), 4u);
  EXPECT_EQ(spans_named(snap, "cap.unprocess").size(), 4u);

  bool saw_auth = false;
  for (const auto& span : spans_named(snap, "cap.process")) {
    if (std::string_view(span.annotation).find("authentication") !=
        std::string_view::npos) {
      saw_auth = true;
    }
  }
  EXPECT_TRUE(saw_auth) << "capability spans carry the capability kind";
  EXPECT_EQ(spans_named(snap, "server.dispatch").size(), 1u);
}

TEST_F(TraceFixture, RelayedCallJoinsTheCallersTrace) {
  proto::RelayForwarder gateway("gw/traced");
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .custom(proto::ProtocolEntry{
                     "relay",
                     proto::RelayProtocol::make_proto_data("gw/traced")})
                 .build();
  client_ctx_->pool().enable("relay");
  EchoPointer gp(*client_ctx_, ref);

  trace::TraceSink::global().clear();
  gp->ping();
  EXPECT_EQ(gp->last_protocol(), "relay[gw/traced]");

  const trace::TraceSnapshot snap = trace::TraceSink::global().snapshot();
  EXPECT_TRUE(one_trace_id(snap));
  EXPECT_EQ(spans_named(snap, "proto.relay").size(), 1u);
  const auto servers = spans_named(snap, "server.dispatch");
  ASSERT_EQ(servers.size(), 1u)
      << "the delegated hop still dispatches exactly once";
  EXPECT_EQ(servers.front().parent_span,
            spans_named(snap, "rmi.invoke").front().span_id);
}

TEST_F(TraceFixture, TcpCallPropagatesAcrossThreadsByWireOnly) {
  // The foreign-world TCP path is the two-process shape (see
  // examples/two_processes.cpp): the reference crosses as bytes and the
  // server handles the frame on its acceptor thread, so the trace context
  // can only arrive via the wire extension — never via thread-locals.
  server_ctx_->enable_tcp();
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .tcp()
                 .build();
  const Bytes wire_form = ref.to_bytes();

  runtime::World other_world;
  const auto other_lan = other_world.add_lan("other");
  orb::Context& foreign_ctx =
      other_world.create_context(other_world.add_machine("foreign", other_lan));

  auto gp = EchoPointer::from_bytes(foreign_ctx, wire_form);
  trace::TraceSink::global().clear();
  EXPECT_EQ(gp->ping(), 1u);

  const trace::TraceSnapshot snap = trace::TraceSink::global().snapshot();
  const auto invokes = spans_named(snap, "rmi.invoke");
  const auto servers = spans_named(snap, "server.dispatch");
  ASSERT_EQ(invokes.size(), 1u);
  ASSERT_EQ(servers.size(), 1u);
  EXPECT_EQ(servers.front().trace_hi, invokes.front().trace_hi);
  EXPECT_EQ(servers.front().trace_lo, invokes.front().trace_lo);
  EXPECT_EQ(servers.front().parent_span, invokes.front().span_id);
  EXPECT_NE(servers.front().thread_index, invokes.front().thread_index)
      << "server dispatch runs on the acceptor thread";
}

// ---- sampling steering ------------------------------------------------------------

class SamplingFixture : public TraceFixture {
 protected:
  void SetUp() override {
    TraceFixture::SetUp();
    trace::TraceSink::global().set_sampling(trace::Sampling::off);
    ref_ = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
               .nexus()
               .build();
  }

  std::size_t spans_after_ping(EchoPointer& gp) {
    trace::TraceSink::global().clear();
    gp->ping();
    return trace::TraceSink::global().snapshot().spans.size();
  }

  orb::ObjectRef ref_;
};

TEST_F(SamplingFixture, PerContextOverrideBeatsGlobalOff) {
  EchoPointer gp(*client_ctx_, ref_);
  EXPECT_EQ(spans_after_ping(gp), 0u);

  client_ctx_->set_trace_sampling(trace::Sampling::always);
  EXPECT_TRUE(trace::TraceSink::active());
  EXPECT_GT(spans_after_ping(gp), 0u);

  client_ctx_->clear_trace_sampling();
  EXPECT_FALSE(trace::TraceSink::active());
  EXPECT_EQ(spans_after_ping(gp), 0u);
}

TEST_F(SamplingFixture, PerGpOverrideBeatsTheContext) {
  client_ctx_->set_trace_sampling(trace::Sampling::always);
  EchoPointer traced(*client_ctx_, ref_);
  EchoPointer muted(*client_ctx_, ref_);
  muted->set_trace_sampling(trace::Sampling::off);

  EXPECT_GT(spans_after_ping(traced), 0u);
  EXPECT_EQ(spans_after_ping(muted), 0u) << "innermost override wins";

  muted->clear_trace_sampling();
  EXPECT_GT(spans_after_ping(muted), 0u);
  client_ctx_->clear_trace_sampling();
}

TEST_F(SamplingFixture, RatioZeroAndOneAreExact) {
  EchoPointer gp(*client_ctx_, ref_);

  trace::TraceSink::global().set_sampling(trace::Sampling::ratio, 0.0);
  trace::TraceSink::global().clear();
  for (int i = 0; i < 16; ++i) gp->ping();
  EXPECT_TRUE(trace::TraceSink::global().snapshot().spans.empty());

  trace::TraceSink::global().set_sampling(trace::Sampling::ratio, 1.0);
  trace::TraceSink::global().clear();
  for (int i = 0; i < 16; ++i) gp->ping();
  EXPECT_EQ(spans_named(trace::TraceSink::global().snapshot(), "rmi.invoke")
                .size(),
            16u);
}

// ---- ring buffer ------------------------------------------------------------------

TEST(TraceRing, FreshThreadDropsOldestAtCapacity) {
  auto& sink = trace::TraceSink::global();
  sink.clear();
  const std::size_t saved = sink.capacity();
  sink.set_capacity(8);

  constexpr std::uint64_t kMarker = 0x5eed0000u;
  std::thread writer([&sink] {
    for (std::uint64_t i = 1; i <= 20; ++i) {
      trace::SpanRecord record{};
      record.trace_hi = kMarker;
      record.trace_lo = 1;
      record.span_id = i;
      sink.record(record);
    }
  });
  writer.join();
  sink.set_capacity(saved);

  const trace::TraceSnapshot snap = sink.snapshot();
  std::vector<std::uint64_t> kept;
  for (const auto& span : snap.spans) {
    if (span.trace_hi == kMarker) kept.push_back(span.span_id);
  }
  ASSERT_EQ(kept.size(), 8u);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i], 13 + i) << "oldest-first, newest survive";
  }
  EXPECT_GE(snap.dropped, 12u);
  sink.clear();
}

TEST(TraceRing, AnnotationsTruncateInsteadOfAllocating) {
  auto& sink = trace::TraceSink::global();
  sink.set_sampling(trace::Sampling::always);
  sink.clear();
  {
    trace::ContextScope scope(trace::mint_root());
    trace::Span span(trace::SpanKind::event, "test.annotate");
    ASSERT_TRUE(span.armed());
    span.annotate(std::string(200, 'x'));
    span.annotate_u64("count", 12345);
  }
  const trace::TraceSnapshot snap = sink.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  const auto& record = snap.spans.front();
  const std::string_view note(record.annotation);
  EXPECT_LT(note.size(), trace::SpanRecord::kAnnotationCapacity);
  EXPECT_EQ(note.substr(0, 4), "xxxx");
  sink.set_sampling(trace::Sampling::off);
  sink.clear();
}

// ---- exporters --------------------------------------------------------------------

class ExportFixture : public TraceFixture {};

TEST_F(ExportFixture, ChromeJsonAndTextTreeRenderTheCall) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .nexus()
                 .build();
  EchoPointer gp(*client_ctx_, ref);
  gp->ping();

  const trace::TraceSnapshot snap = trace::TraceSink::global().snapshot();
  const std::string json = trace::to_chrome_json(snap);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"rmi.invoke\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  const std::string tree = trace::to_text_tree(snap);
  EXPECT_NE(tree.find("rmi.invoke"), std::string::npos);
  EXPECT_NE(tree.find("servant.dispatch"), std::string::npos);
  // The servant span is nested (indented) under the dispatch pipeline.
  EXPECT_NE(tree.find("  servant.dispatch"), std::string::npos);
}

}  // namespace
}  // namespace ohpx
