// Unit tests for the transport layer: endpoint registry, in-process
// channel, simulated-network channel cost accounting, and the real TCP
// listener/channel pair (loopback sockets).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ohpx/transport/inproc.hpp"
#include "ohpx/transport/sim.hpp"
#include "ohpx/transport/tcp.hpp"

namespace ohpx::transport {
namespace {

wire::Buffer make_payload(std::string_view text) {
  return wire::Buffer(reinterpret_cast<const std::uint8_t*>(text.data()),
                      text.size());
}

FrameHandler upper_caser() {
  return [](const wire::Buffer& request) {
    wire::Buffer reply = request;
    for (auto& b : reply.mutable_view()) {
      if (b >= 'a' && b <= 'z') b = static_cast<std::uint8_t>(b - 'a' + 'A');
    }
    return reply;
  };
}

// ---- endpoint registry ----------------------------------------------------------

TEST(EndpointRegistryTest, BindLookupUnbind) {
  auto& registry = EndpointRegistry::instance();
  const std::string name = "test/ep-1";
  registry.bind(name, upper_caser());
  EXPECT_TRUE(registry.contains(name));
  FrameHandler handler = registry.lookup(name);
  EXPECT_EQ(handler(make_payload("hi")).bytes(), bytes_of("HI"));
  registry.unbind(name);
  EXPECT_FALSE(registry.contains(name));
}

TEST(EndpointRegistryTest, LookupMissingThrows) {
  try {
    EndpointRegistry::instance().lookup("test/no-such");
    FAIL();
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), ErrorCode::transport_unknown_endpoint);
  }
}

TEST(EndpointRegistryTest, RebindReplacesHandler) {
  auto& registry = EndpointRegistry::instance();
  const std::string name = "test/ep-rebind";
  registry.bind(name, [](const wire::Buffer&) { return make_payload("old"); });
  registry.bind(name, [](const wire::Buffer&) { return make_payload("new"); });
  EXPECT_EQ(registry.lookup(name)(make_payload("")).bytes(), bytes_of("new"));
  registry.unbind(name);
}

// ---- in-process channel -----------------------------------------------------------

TEST(InProcChannelTest, RoundTripAndLedger) {
  auto& registry = EndpointRegistry::instance();
  registry.bind("test/inproc", upper_caser());

  InProcChannel channel("test/inproc");
  CostLedger ledger;
  wire::Buffer reply = channel.roundtrip(make_payload("abc"), ledger);
  EXPECT_EQ(reply.bytes(), bytes_of("ABC"));
  EXPECT_EQ(ledger.bytes_sent(), 3u);
  EXPECT_EQ(ledger.bytes_received(), 3u);
  EXPECT_EQ(ledger.modeled().count(), 0);
  EXPECT_EQ(channel.describe(), "inproc:test/inproc");

  registry.unbind("test/inproc");
}

TEST(InProcChannelTest, ResolvesPerCall) {
  auto& registry = EndpointRegistry::instance();
  InProcChannel channel("test/latebound");
  CostLedger ledger;
  // Endpoint does not exist yet.
  EXPECT_THROW(channel.roundtrip(make_payload("x"), ledger), TransportError);
  // Binding afterwards makes the same channel object work (migration
  // depends on this late-binding behaviour).
  registry.bind("test/latebound", upper_caser());
  EXPECT_EQ(channel.roundtrip(make_payload("x"), ledger).bytes(), bytes_of("X"));
  registry.unbind("test/latebound");
}

// ---- simulated-network channel -------------------------------------------------------

TEST(SimChannelTest, ChargesModeledTimeBothWays) {
  auto& registry = EndpointRegistry::instance();
  registry.bind("test/sim", upper_caser());

  netsim::LinkSpec link{"lab", 8e6, Nanoseconds(1000)};  // 1 MB/s, 1 us
  SimChannel channel("test/sim", link);
  CostLedger ledger;
  channel.roundtrip(make_payload(std::string(1000, 'a')), ledger);
  // Each direction: 1000 ns latency + 1000 bytes / 1 MBps = 1 ms.
  const double modeled_ms =
      static_cast<double>(ledger.modeled().count()) / 1e6;
  EXPECT_NEAR(modeled_ms, 2.002, 0.01);

  registry.unbind("test/sim");
}

TEST(SimChannelTest, LinkProviderReevaluatedPerCall) {
  auto& registry = EndpointRegistry::instance();
  registry.bind("test/sim2", upper_caser());

  std::atomic<int> calls{0};
  SimChannel channel("test/sim2", [&calls]() {
    ++calls;
    return netsim::LinkSpec{"dyn", 1e9, Nanoseconds(10)};
  });
  CostLedger ledger;
  channel.roundtrip(make_payload("a"), ledger);
  channel.roundtrip(make_payload("b"), ledger);
  EXPECT_GE(calls.load(), 2);

  registry.unbind("test/sim2");
}

// ---- real TCP ---------------------------------------------------------------------------

TEST(TcpTest, RoundTripOverLoopback) {
  TcpListener listener(0, upper_caser());
  ASSERT_GT(listener.port(), 0);

  TcpChannel channel("127.0.0.1", listener.port());
  CostLedger ledger;
  wire::Buffer reply = channel.roundtrip(make_payload("hello tcp"), ledger);
  EXPECT_EQ(reply.bytes(), bytes_of("HELLO TCP"));
  EXPECT_GT(ledger.real().count(), 0);
  EXPECT_EQ(ledger.bytes_sent(), 9u);
}

TEST(TcpTest, LargeFrames) {
  TcpListener listener(0, [](const wire::Buffer& request) { return request; });
  TcpChannel channel("127.0.0.1", listener.port());
  CostLedger ledger;

  std::string big(4 * 1024 * 1024, 'z');
  wire::Buffer reply = channel.roundtrip(make_payload(big), ledger);
  EXPECT_EQ(reply.size(), big.size());
}

TEST(TcpTest, SequentialRequestsOnOneConnection) {
  std::atomic<int> served{0};
  TcpListener listener(0, [&served](const wire::Buffer& request) {
    ++served;
    return request;
  });
  TcpChannel channel("127.0.0.1", listener.port());
  CostLedger ledger;
  for (int i = 0; i < 50; ++i) {
    channel.roundtrip(make_payload("ping"), ledger);
  }
  EXPECT_EQ(served.load(), 50);
}

TEST(TcpTest, ConcurrentClients) {
  TcpListener listener(0, upper_caser());
  const std::uint16_t port = listener.port();

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([port, &failures] {
      try {
        TcpChannel channel("127.0.0.1", port);
        CostLedger ledger;
        for (int i = 0; i < 20; ++i) {
          if (channel.roundtrip(make_payload("abc"), ledger).bytes() !=
              bytes_of("ABC")) {
            ++failures;
          }
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(TcpTest, ConnectToDeadPortFails) {
  // Grab an ephemeral port, then close the listener so nothing listens.
  std::uint16_t dead_port;
  {
    TcpListener listener(0, upper_caser());
    dead_port = listener.port();
  }
  try {
    TcpChannel channel("127.0.0.1", dead_port);
    CostLedger ledger;
    channel.roundtrip(make_payload("x"), ledger);
    FAIL() << "expected connect failure";
  } catch (const TransportError& e) {
    EXPECT_TRUE(e.code() == ErrorCode::transport_connect_failed ||
                e.code() == ErrorCode::transport_closed ||
                e.code() == ErrorCode::transport_io);
  }
}

TEST(TcpTest, BadAddressRejected) {
  EXPECT_THROW(TcpChannel("not-an-ip", 1234), TransportError);
}

TEST(TcpTest, ListenerStopIsIdempotent) {
  TcpListener listener(0, upper_caser());
  listener.stop();
  listener.stop();
}

TEST(TcpTest, ServerStopClosesClients) {
  auto listener = std::make_unique<TcpListener>(0, upper_caser());
  TcpChannel channel("127.0.0.1", listener->port());
  CostLedger ledger;
  channel.roundtrip(make_payload("a"), ledger);
  listener.reset();  // server goes away
  EXPECT_THROW(
      {
        channel.roundtrip(make_payload("b"), ledger);
        channel.roundtrip(make_payload("c"), ledger);
      },
      TransportError);
}

// ---- handler errors don't kill the server ------------------------------------------------

TEST(TcpTest, HandlerExceptionDropsConnectionOnly) {
  std::atomic<int> calls{0};
  TcpListener listener(0, [&calls](const wire::Buffer& request) {
    if (++calls == 1) throw std::runtime_error("boom");
    return request;
  });

  {
    TcpChannel first("127.0.0.1", listener.port());
    CostLedger ledger;
    EXPECT_THROW(first.roundtrip(make_payload("x"), ledger), TransportError);
  }
  // A fresh connection still works.
  TcpChannel second("127.0.0.1", listener.port());
  CostLedger ledger;
  EXPECT_EQ(second.roundtrip(make_payload("ok"), ledger).bytes(),
            bytes_of("ok"));
}

}  // namespace
}  // namespace ohpx::transport
