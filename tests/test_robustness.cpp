// Robustness sweeps: the server pipeline must survive arbitrary byte-level
// corruption — every mutated frame yields a well-formed reply frame (error
// or success), never a crash or an unframed blob.  Same discipline for the
// client decoding mutated replies: typed exceptions only.
#include <gtest/gtest.h>

#include "ohpx/capability/builtin/authentication.hpp"
#include "ohpx/capability/builtin/compression.hpp"
#include "ohpx/capability/registry.hpp"
#include "ohpx/capability/builtin/encryption.hpp"
#include "ohpx/common/rng.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/protocol/glue_wire.hpp"
#include "ohpx/runtime/migration.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/counter.hpp"
#include "ohpx/scenario/echo.hpp"
#include "ohpx/wire/serialize.hpp"

namespace ohpx {
namespace {

using scenario::EchoServant;

class RobustnessFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto lan = world_.add_lan("lan");
    const auto machine = world_.add_machine("box", lan);
    server_ctx_ = &world_.create_context(machine);
    const auto key = crypto::Key128::from_seed(0xfeed);
    ref_ = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
               .glue({std::make_shared<cap::CompressionCapability>(
                          compress::CodecId::lz),
                      std::make_shared<cap::EncryptionCapability>(key),
                      std::make_shared<cap::AuthenticationCapability>(
                          key, "fuzz", cap::Scope::always)})
               .build();
  }

  /// A valid request frame for the echo method, glue-processed.
  wire::Buffer valid_frame() {
    const auto data = proto::decode_glue_proto_data(ref_.table().at(0).proto_data);
    const auto chain =
        cap::CapabilityRegistry::instance().instantiate_chain(data.capabilities);

    wire::Buffer payload;
    {
      wire::Encoder enc(payload);
      wire::serialize(enc, std::vector<std::int32_t>{1, 2, 3, 4});
    }
    cap::CallContext call;
    call.request_id = 42;
    call.object_id = ref_.object_id();
    call.method_id = EchoServant::kEcho;
    cap::CapabilityChain mutable_chain = chain;
    mutable_chain.process_outbound(payload, call);
    proto::prepend_glue_id(payload, data.glue_id);

    wire::MessageHeader header;
    header.type = wire::MessageType::request;
    header.flags = wire::kFlagGlueProcessed;
    header.request_id = 42;
    header.object_id = ref_.object_id();
    header.method_or_code = EchoServant::kEcho;
    return wire::encode_frame(header, payload.view());
  }

  /// The reply must always parse as a frame of type reply/error_reply.
  static void expect_well_formed_reply(const wire::Buffer& reply) {
    BytesView body;
    const wire::MessageHeader header = wire::decode_frame(reply.view(), body);
    EXPECT_TRUE(header.type == wire::MessageType::reply ||
                header.type == wire::MessageType::error_reply);
    if (header.type == wire::MessageType::error_reply) {
      std::uint32_t code = 0;
      std::string message;
      wire::decode_error_body(body, code, message);
      EXPECT_NE(code, 0u);
    }
  }

  runtime::World world_;
  orb::Context* server_ctx_ = nullptr;
  orb::ObjectRef ref_;
};

TEST_F(RobustnessFixture, ValidFrameStillWorks) {
  const wire::Buffer reply = server_ctx_->handle_frame(valid_frame());
  BytesView body;
  EXPECT_EQ(wire::decode_frame(reply.view(), body).type,
            wire::MessageType::reply);
}

TEST_F(RobustnessFixture, SingleBitFlipsNeverCrash) {
  const wire::Buffer pristine = valid_frame();
  // Flip each bit of the header and a sample of payload bits.
  for (std::size_t byte = 0; byte < pristine.size();
       byte += (byte < wire::kHeaderSize ? 1 : 7)) {
    for (int bit = 0; bit < 8; ++bit) {
      wire::Buffer mutated = pristine;
      mutated.data()[byte] ^= static_cast<std::uint8_t>(1u << bit);
      expect_well_formed_reply(server_ctx_->handle_frame(mutated));
    }
  }
}

TEST_F(RobustnessFixture, TruncationsNeverCrash) {
  const wire::Buffer pristine = valid_frame();
  for (std::size_t keep = 0; keep < pristine.size(); keep += 3) {
    wire::Buffer truncated(pristine.data(), keep);
    expect_well_formed_reply(server_ctx_->handle_frame(truncated));
  }
}

class RandomFrameFuzz : public RobustnessFixture,
                        public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(RandomFrameFuzz, RandomBlobsNeverCrash) {
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    wire::Buffer garbage;
    garbage.resize(rng.next_below(512));
    for (auto& byte : garbage.mutable_view()) {
      byte = static_cast<std::uint8_t>(rng.next());
    }
    expect_well_formed_reply(server_ctx_->handle_frame(garbage));
  }
}

TEST_P(RandomFrameFuzz, RandomMutationsOfValidFramesNeverCrash) {
  Xoshiro256 rng(GetParam());
  const wire::Buffer pristine = valid_frame();
  for (int i = 0; i < 200; ++i) {
    wire::Buffer mutated = pristine;
    const std::size_t mutations = 1 + rng.next_below(8);
    for (std::size_t m = 0; m < mutations; ++m) {
      mutated.data()[rng.next_below(mutated.size())] =
          static_cast<std::uint8_t>(rng.next());
    }
    expect_well_formed_reply(server_ctx_->handle_frame(mutated));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFrameFuzz,
                         ::testing::Values(0xa, 0xb, 0xc, 0xd));

// ---- migration racing live traffic --------------------------------------------

// Clients hammer a counter while another thread migrates it between
// contexts.  Every call must either succeed or raise a typed ohpx error;
// the stale-reference retry in CallCore should make failures rare and the
// final count must equal the number of successful adds.
TEST(MigrationChaos, CallsSurviveConcurrentMigrations) {
  runtime::World world;
  const auto lan = world.add_lan("lan");
  std::vector<orb::Context*> homes;
  for (int i = 0; i < 3; ++i) {
    homes.push_back(
        &world.create_context(world.add_machine("m" + std::to_string(i), lan)));
  }
  orb::Context& client_ctx =
      world.create_context(world.add_machine("client", lan));

  auto servant = std::make_shared<scenario::CounterServant>();
  const orb::ObjectRef ref = orb::RefBuilder(*homes[0], servant).build();

  std::atomic<bool> stop{false};
  std::atomic<int> successes{0};
  std::atomic<int> typed_failures{0};
  std::atomic<int> untyped_failures{0};

  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&] {
      scenario::CounterPointer gp(client_ctx, ref);
      for (int i = 0; i < 150; ++i) {
        try {
          gp->add(1);
          ++successes;
        } catch (const Error&) {
          ++typed_failures;
        } catch (...) {
          ++untyped_failures;
        }
      }
    });
  }

  std::thread migrator([&] {
    int position = 0;
    while (!stop.load()) {
      orb::Context* from = world.find_context_of(ref.object_id());
      orb::Context* to = homes[static_cast<std::size_t>(++position % 3)];
      if (from != nullptr && from != to) {
        try {
          runtime::migrate_shared(ref.object_id(), *from, *to);
        } catch (const Error&) {
          // A racing migration may observe the object mid-move; benign.
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));  // ohpx-lint: allow-wall-clock (paces a real migration race)
    }
  });

  for (auto& client : clients) client.join();
  stop = true;
  migrator.join();

  EXPECT_EQ(untyped_failures.load(), 0);
  EXPECT_GT(successes.load(), 0);
  EXPECT_EQ(servant->value(), successes.load());
}

// ---- scenario servants (coverage of the reference implementations) ------------

TEST(ScenarioEcho, AllMethodsBehave) {
  runtime::World world;
  const auto lan = world.add_lan("lan");
  orb::Context& ctx = world.create_context(world.add_machine("m", lan));
  auto servant = std::make_shared<EchoServant>();
  auto ref = orb::RefBuilder(ctx, servant).build();
  scenario::EchoPointer gp(ctx, ref);

  EXPECT_EQ(gp->sum({1, 2, 3}), 6);
  EXPECT_EQ(gp->sum({}), 0);
  EXPECT_EQ(gp->reverse(""), "");
  EXPECT_EQ(gp->ping(), 1u);
  EXPECT_EQ(gp->ping(), 2u);
  EXPECT_EQ(servant->pings(), 2u);

  // Snapshot/restore carries the ping count.
  auto clone = std::make_shared<EchoServant>();
  clone->restore(servant->snapshot());
  EXPECT_EQ(clone->pings(), 2u);
}

}  // namespace
}  // namespace ohpx
