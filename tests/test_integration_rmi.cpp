// End-to-end RMI integration tests: every protocol, capability chains,
// error propagation, reference exchange, migration, and the Figure 4
// adaptivity scenario.
#include <gtest/gtest.h>

#include "ohpx/capability/builtin/authentication.hpp"
#include "ohpx/capability/builtin/encryption.hpp"
#include "ohpx/capability/builtin/quota.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/runtime/migration.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/counter.hpp"
#include "ohpx/scenario/echo.hpp"
#include "ohpx/scenario/figure4.hpp"

namespace ohpx {
namespace {

using scenario::CounterPointer;
using scenario::CounterServant;
using scenario::EchoPointer;
using scenario::EchoServant;
using scenario::EchoStub;

std::vector<std::int32_t> iota_values(std::size_t n) {
  std::vector<std::int32_t> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<std::int32_t>(i);
  return values;
}

class TwoMachineWorld : public ::testing::Test {
 protected:
  void SetUp() override {
    lan_ = world_.add_lan("lan");
    m_client_ = world_.add_machine("client-box", lan_);
    m_server_ = world_.add_machine("server-box", lan_);
    client_ctx_ = &world_.create_context(m_client_);
    server_ctx_ = &world_.create_context(m_server_);
  }

  runtime::World world_;
  netsim::LanId lan_{};
  netsim::MachineId m_client_{}, m_server_{};
  orb::Context* client_ctx_ = nullptr;
  orb::Context* server_ctx_ = nullptr;
};

TEST_F(TwoMachineWorld, EchoAcrossMachinesUsesNexus) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>()).build();
  EchoPointer gp(*client_ctx_, ref);

  const auto values = iota_values(100);
  EXPECT_EQ(gp->echo(values), values);
  EXPECT_EQ(gp->last_protocol(), "nexus-tcp");
  EXPECT_EQ(gp->sum(values), 4950);
}

TEST_F(TwoMachineWorld, SameMachineUsesShm) {
  orb::Context& local_server = world_.create_context(m_client_);
  auto ref = orb::RefBuilder(local_server, std::make_shared<EchoServant>()).build();
  EchoPointer gp(*client_ctx_, ref);

  EXPECT_EQ(gp->reverse("abc"), "cba");
  EXPECT_EQ(gp->last_protocol(), "shm");
}

TEST_F(TwoMachineWorld, GlueChainRoundTrips) {
  auto key = crypto::Key128::from_seed(42);
  auto encryption = std::make_shared<cap::EncryptionCapability>(key);
  auto auth = std::make_shared<cap::AuthenticationCapability>(
      key, "tester", cap::Scope::always);

  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({encryption, auth})
                 .build();
  EchoPointer gp(*client_ctx_, ref);

  const auto values = iota_values(1000);
  EXPECT_EQ(gp->echo(values), values);
  EXPECT_EQ(gp->last_protocol(), "glue[encryption,authentication]->nexus-tcp");
}

TEST_F(TwoMachineWorld, QuotaExhaustionRaisesTypedError) {
  auto quota = std::make_shared<cap::QuotaCapability>(3);
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({quota})
                 .build();
  EchoPointer gp(*client_ctx_, ref);

  EXPECT_EQ(gp->ping(), 1u);
  EXPECT_EQ(gp->ping(), 2u);
  EXPECT_EQ(gp->ping(), 3u);
  try {
    gp->ping();
    FAIL() << "expected CapabilityDenied";
  } catch (const CapabilityDenied& e) {
    EXPECT_EQ(e.code(), ErrorCode::capability_exhausted);
  }
}

TEST_F(TwoMachineWorld, ApplicationErrorPropagatesAsRemoteError) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>()).build();
  EchoPointer gp(*client_ctx_, ref);

  try {
    gp->fail();
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::remote_application_error);
    EXPECT_STREQ(e.what(), "echo failed");
  }
}

TEST_F(TwoMachineWorld, UnknownMethodPropagates) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>()).build();
  EchoStub stub(*client_ctx_, ref);
  EXPECT_THROW(stub.call<std::int32_t>(9999), ObjectError);
}

TEST_F(TwoMachineWorld, TypeMismatchRejectedAtBind) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>()).build();
  EXPECT_THROW(CounterPointer(*client_ctx_, ref), ObjectError);
}

TEST_F(TwoMachineWorld, ReferenceExchangeCarriesCapabilities) {
  auto quota = std::make_shared<cap::QuotaCapability>(2);
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({quota})
                 .build();

  // First client uses the reference once...
  EchoPointer first(*client_ctx_, ref);
  EXPECT_EQ(first->ping(), 1u);

  // ...then serializes it and hands it to a second client context.  The
  // server-side quota keeps its count: only one call remains.
  orb::Context& other_client = world_.create_context(m_client_);
  EchoPointer second =
      EchoPointer::from_bytes(other_client, first->ref().to_bytes());
  EXPECT_EQ(second->ping(), 2u);
  EXPECT_THROW(second->ping(), CapabilityDenied);
}

TEST_F(TwoMachineWorld, RealTcpProtocol) {
  server_ctx_->enable_tcp();
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .tcp()
                 .build();
  EchoPointer gp(*client_ctx_, ref);

  const auto values = iota_values(5000);
  EXPECT_EQ(gp->echo(values), values);
  EXPECT_EQ(gp->last_protocol(), "tcp");
}

TEST_F(TwoMachineWorld, MigrationPreservesCounterState) {
  auto servant = std::make_shared<CounterServant>();
  auto ref = orb::RefBuilder(*server_ctx_, servant).build();
  CounterPointer gp(*client_ctx_, ref);

  gp->add(5);
  gp->add(7);
  EXPECT_EQ(gp->get(), 12);
  EXPECT_EQ(gp->last_protocol(), "nexus-tcp");

  // Migrate the counter onto the client's machine; the same GP now picks
  // shared memory and still sees the accumulated state.
  orb::Context& local = world_.create_context(m_client_);
  runtime::migrate_shared(ref.object_id(), *server_ctx_, local);

  EXPECT_EQ(gp->get(), 12);
  EXPECT_EQ(gp->last_protocol(), "shm");
  EXPECT_EQ(gp->add(3), 15);
}

TEST_F(TwoMachineWorld, MigrateCopyViaSnapshotRestore) {
  runtime::ServantTypeRegistry::instance().register_type<CounterServant>();

  auto servant = std::make_shared<CounterServant>();
  auto ref = orb::RefBuilder(*server_ctx_, servant).build();
  CounterPointer gp(*client_ctx_, ref);
  gp->set(41);

  orb::Context& local = world_.create_context(m_client_);
  runtime::migrate_copy(ref.object_id(), *server_ctx_, local);

  EXPECT_EQ(gp->add(1), 42);
  // The original instance is out of the loop: mutating it has no effect.
  servant->set_value(0);
  EXPECT_EQ(gp->get(), 42);
}

TEST_F(TwoMachineWorld, PoolDisableForcesFallback) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .shm()
                 .nexus()
                 .build();
  orb::Context& local_server = world_.create_context(m_client_);
  runtime::migrate_shared(ref.object_id(), *server_ctx_, local_server);

  EchoPointer gp(*client_ctx_, ref);
  EXPECT_EQ(gp->ping(), 1u);
  EXPECT_EQ(gp->last_protocol(), "shm");

  // User control over selection (paper §3.2): disabling shm in the local
  // pool forces the next entry even though shm is applicable.
  client_ctx_->pool().disable("shm");
  EXPECT_EQ(gp->ping(), 2u);
  EXPECT_EQ(gp->last_protocol(), "nexus-tcp");
}

// ---- the Figure 4 scenario ------------------------------------------------

TEST(Figure4, ProtocolAdaptsAcrossAllFourStages) {
  scenario::Figure4Scenario fig(netsim::atm_155(), netsim::wan_t3());
  EchoPointer gp = fig.client_pointer();
  const auto values = iota_values(256);

  // Stage 1: server on M1, different campus — full glue chain.
  EXPECT_EQ(fig.server_machine(), fig.m1());
  EXPECT_EQ(gp->echo(values), values);
  EXPECT_EQ(gp->last_protocol(), "glue[quota,authentication]->nexus-tcp");

  // Stage 3: migrated to M2, same campus — timeout-only glue.
  fig.migrate_to(fig.m2());
  EXPECT_EQ(gp->echo(values), values);
  EXPECT_EQ(gp->last_protocol(), "glue[quota]->nexus-tcp");

  // Stage 5: migrated to M3, same LAN — plain nexus (shm inapplicable).
  fig.migrate_to(fig.m3());
  EXPECT_EQ(gp->echo(values), values);
  EXPECT_EQ(gp->last_protocol(), "nexus-tcp");

  // Stage 7: migrated to M0, same machine — shared memory.
  fig.migrate_to(fig.m0());
  EXPECT_EQ(gp->echo(values), values);
  EXPECT_EQ(gp->last_protocol(), "shm");
}

TEST(Figure4, ModeledCostsRankProtocolsAsInPaper) {
  scenario::Figure4Scenario fig(netsim::atm_155(), netsim::wan_t3());
  EchoPointer gp = fig.client_pointer();
  const auto values = iota_values(64 * 1024);

  CostLedger on_wan;
  gp->echo_with_cost(on_wan, values);

  fig.migrate_to(fig.m0());
  CostLedger on_shm;
  gp->echo_with_cost(on_shm, values);

  // Network time dominates; shm must be at least 10x faster (the paper's
  // "more than an order of magnitude").  The ratio holds only when real
  // CPU time is not inflated by sanitizer instrumentation or the
  // lock-order validator (which serializes every sync::Mutex acquisition
  // through its registry); the modeled-time invariants below hold
  // regardless.
#if !defined(OHPX_SANITIZED_BUILD) && !defined(OHPX_LOCK_ORDER_CHECKS)
  EXPECT_GT(on_wan.total_seconds(), 10 * on_shm.total_seconds());
#endif
  EXPECT_GT(on_wan.modeled().count(), 0);
  EXPECT_EQ(on_shm.modeled().count(), 0);
}

}  // namespace
}  // namespace ohpx
