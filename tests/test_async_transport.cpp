// Async transport semantics over the epoll reactor: backpressure when the
// inflight window fills, its interplay with retry policies and circuit
// breakers (window-full is "too busy", never "broken"), deadline
// cancellation of pending futures, and correlation-id demux under heavy
// overlap.  All timing runs on the resilience ManualClock — no sleeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <string>
#include <vector>

#include "ohpx/metrics/metrics.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/resilience/clock.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/echo.hpp"
#include "ohpx/transport/reactor.hpp"

namespace ohpx {
namespace {

using scenario::EchoServant;
using scenario::EchoStub;

// A servant whose kBlock method parks the server's connection handler
// until the test releases it — the deterministic way to keep calls
// inflight (queued or awaiting a reply) and fill the reactor window.
class GatedServant final : public orb::Servant {
 public:
  static constexpr std::string_view kTypeName = "Gated";
  enum Method : std::uint32_t {
    kBlock = 1,  // () -> u64: waits for release(), returns the call index
    kPing = 2,   // () -> u64
  };

  std::string_view type_name() const noexcept override { return kTypeName; }

  void dispatch(std::uint32_t method_id, wire::Decoder& in,
                wire::Encoder& out) override {
    (void)in;
    switch (method_id) {
      case kBlock: {
        const std::uint64_t index = arrivals_.fetch_add(1) + 1;
        opened_.wait();
        orb::marshal_result(out, index);
        return;
      }
      case kPing:
        orb::marshal_result(out, pings_.fetch_add(1) + 1);
        return;
      default:
        orb::unknown_method(kTypeName, method_id);
    }
  }

  void release() {
    if (!released_.exchange(true)) gate_.set_value();
  }
  std::uint64_t arrivals() const noexcept { return arrivals_.load(); }

 private:
  std::promise<void> gate_;
  std::shared_future<void> opened_{gate_.get_future().share()};
  std::atomic<bool> released_{false};
  std::atomic<std::uint64_t> arrivals_{0};
  std::atomic<std::uint64_t> pings_{0};
};

class GatedStub : public orb::ObjectStub {
 public:
  static constexpr std::string_view kTypeName = GatedServant::kTypeName;
  using ObjectStub::ObjectStub;
};

// Shrinks the global reactor window for one test; restores on exit.
class ScopedWindow {
 public:
  explicit ScopedWindow(std::size_t window)
      : previous_(transport::Reactor::global().inflight_window()) {
    transport::Reactor::global().set_inflight_window(window);
  }
  ~ScopedWindow() {
    transport::Reactor::global().set_inflight_window(previous_);
  }

 private:
  std::size_t previous_;
};

std::uint64_t counter_value(const char* name) {
  return metrics::MetricsRegistry::global()
      .counter_handle(name)
      ->load(std::memory_order_relaxed);
}

class AsyncTransportFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto lan = world_.add_lan("lan");
    m_client_ = world_.add_machine("client", lan);
    m_server_ = world_.add_machine("server", lan);
    client_ctx_ = &world_.create_context(m_client_);
    server_ctx_ = &world_.create_context(m_server_);
    server_ctx_->enable_tcp();
  }

  // A tcp-only reference: the table carries exactly the tcp entry, so
  // selection always routes through the reactor.
  template <typename Servant>
  orb::ObjectRef tcp_ref(std::shared_ptr<Servant> servant) {
    return orb::RefBuilder(*server_ctx_, std::move(servant)).tcp().build();
  }

  runtime::World world_;
  netsim::MachineId m_client_{}, m_server_{};
  orb::Context* client_ctx_ = nullptr;
  orb::Context* server_ctx_ = nullptr;
};

// ---- window-full surfaces as a synchronous backpressure refusal -----------

TEST_F(AsyncTransportFixture, WindowFullRefusesWithBackpressure) {
  auto servant = std::make_shared<GatedServant>();
  GatedStub stub(*client_ctx_, tcp_ref(servant));
  ScopedWindow window(2);

  auto first = stub.call_async<std::uint64_t>(GatedServant::kBlock);
  auto second = stub.call_async<std::uint64_t>(GatedServant::kBlock);

  const std::uint64_t refusals_before = counter_value("rmi.backpressure");
  try {
    stub.call_async<std::uint64_t>(GatedServant::kBlock);
    FAIL() << "expected TransportError(backpressure)";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), ErrorCode::backpressure);
  }
  EXPECT_EQ(counter_value("rmi.backpressure"), refusals_before + 1);
  EXPECT_TRUE(resilience::is_retryable(ErrorCode::backpressure));

  // Nothing was queued for the refused call; the two admitted calls
  // complete once the gate opens.
  servant->release();
  EXPECT_GT(first.get(), 0u);
  EXPECT_GT(second.get(), 0u);
}

// ---- the sync path retries backpressure with backoff ----------------------

TEST_F(AsyncTransportFixture, RetryPolicyBacksOffOnBackpressure) {
  auto servant = std::make_shared<GatedServant>();
  GatedStub blocker(*client_ctx_, tcp_ref(servant));
  ScopedWindow window(1);

  auto parked = blocker.call_async<std::uint64_t>(GatedServant::kBlock);

  resilience::ScopedManualClock scoped_clock;
  GatedStub caller(*client_ctx_, tcp_ref(servant));
  resilience::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::milliseconds(10);
  policy.backoff_multiplier = 2.0;
  caller.set_retry_policy(policy);

  const std::uint64_t retries_before = counter_value("rmi.retries");
  const std::int64_t t0 = scoped_clock.clock().now_ns();
  try {
    caller.call<std::uint64_t>(GatedServant::kPing);
    FAIL() << "expected the retries to exhaust against a full window";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.code(), ErrorCode::backpressure);
  }
  // Two retries waited 10ms then 20ms on the manual clock — the policy
  // backed off instead of hammering the full window.
  EXPECT_EQ(counter_value("rmi.retries"), retries_before + 2);
  EXPECT_GE(scoped_clock.clock().now_ns() - t0,
            std::chrono::nanoseconds(std::chrono::milliseconds(30)).count());

  servant->release();
  EXPECT_EQ(parked.get(), 1u);
}

// ---- backpressure never trips a breaker -----------------------------------

TEST_F(AsyncTransportFixture, BackpressureDoesNotTripBreakers) {
  auto servant = std::make_shared<GatedServant>();
  GatedStub blocker(*client_ctx_, tcp_ref(servant));
  ScopedWindow window(1);

  auto parked = blocker.call_async<std::uint64_t>(GatedServant::kBlock);

  GatedStub caller(*client_ctx_, tcp_ref(servant));
  resilience::BreakerConfig breaker;
  breaker.failure_threshold = 1;  // any real transport failure would trip
  caller.set_breaker_config(breaker);
  resilience::RetryPolicy no_retry;
  no_retry.max_attempts = 1;
  caller.set_retry_policy(no_retry);

  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(caller.call<std::uint64_t>(GatedServant::kPing),
                 TransportError);
    EXPECT_EQ(caller.breaker_state(0),
              resilience::CircuitBreaker::State::closed)
        << "window-full means the destination is too busy, not broken";
  }

  servant->release();
  EXPECT_EQ(parked.get(), 1u);
  // With the window free again the same stub's calls flow — and succeed
  // through the still-closed breaker.
  EXPECT_EQ(caller.call<std::uint64_t>(GatedServant::kPing), 1u);
}

// ---- deadlines cancel pending futures, exactly once -----------------------

TEST_F(AsyncTransportFixture, DeadlineCancelsPendingFutureExactlyOnce) {
  auto servant = std::make_shared<GatedServant>();
  GatedStub stub(*client_ctx_, tcp_ref(servant));

  resilience::ScopedManualClock scoped_clock;
  stub.set_deadline_budget(std::chrono::milliseconds(5));
  auto future = stub.call_async<std::uint64_t>(GatedServant::kBlock);
  EXPECT_FALSE(future.ready());

  scoped_clock.clock().advance(std::chrono::milliseconds(6));
  transport::Reactor::global().poke();
  future.wait();
  EXPECT_THROW(future.get(), DeadlineExceeded);

  // The gated reply arrives after cancellation: the reactor drops it (the
  // correlation id no longer maps to a pending call) and the future's
  // settled error is immutable — a second get() observes the same
  // DeadlineExceeded, not a value.
  servant->release();
  EXPECT_THROW(future.get(), DeadlineExceeded);

  // The connection itself survived the cancellation: a fresh unbounded
  // call on the same stub still round-trips.
  stub.set_deadline_budget(Nanoseconds{0});
  EXPECT_EQ(stub.call<std::uint64_t>(GatedServant::kPing), 1u);
}

// ---- correlation demux under overlap --------------------------------------

TEST_F(AsyncTransportFixture, OverlappingCallsDemuxToTheRightFutures) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .tcp()
                 .build();
  EchoStub stub(*client_ctx_, ref);

  constexpr int kCalls = 128;
  std::vector<ohpx::Future<std::string>> futures;
  futures.reserve(kCalls);
  for (int i = 0; i < kCalls; ++i) {
    futures.push_back(stub.call_async<std::string>(
        EchoServant::kReverse, "payload-" + std::to_string(i)));
  }
  for (int i = 0; i < kCalls; ++i) {
    std::string expected = "payload-" + std::to_string(i);
    std::reverse(expected.begin(), expected.end());
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), expected)
        << "reply " << i << " demuxed to the wrong future";
  }
}

// ---- the continuation path records completion latency ---------------------

TEST_F(AsyncTransportFixture, AsyncCompletionLatencyRecorded) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .tcp()
                 .build();
  EchoStub stub(*client_ctx_, ref);

  auto* histogram =
      metrics::MetricsRegistry::global().latency_handle("rmi.async.latency");
  const std::uint64_t samples_before = histogram->count();

  constexpr int kCalls = 6;
  for (int i = 0; i < kCalls; ++i) {
    auto future = stub.call_async<std::string>(EchoServant::kReverse,
                                               std::string("abc"));
    EXPECT_EQ(future.get(), "cba");
  }

  // Every settled async call recorded exactly one submit-to-settlement
  // sample; the sync-path histogram is untouched by the async route.
  EXPECT_EQ(histogram->count(), samples_before + kCalls);
}

// ---- deadline cancellation is counted on the async path -------------------

TEST_F(AsyncTransportFixture, AsyncDeadlineCancellationCounted) {
  auto servant = std::make_shared<GatedServant>();
  GatedStub stub(*client_ctx_, tcp_ref(servant));

  resilience::ScopedManualClock scoped_clock;
  stub.set_deadline_budget(std::chrono::milliseconds(5));

  auto* histogram =
      metrics::MetricsRegistry::global().latency_handle("rmi.async.latency");
  const std::uint64_t samples_before = histogram->count();
  const std::uint64_t cancelled_before =
      counter_value("rmi.async.deadline_cancelled");
  const std::uint64_t deadline_before = counter_value("rmi.deadline_exceeded");

  auto future = stub.call_async<std::uint64_t>(GatedServant::kBlock);
  scoped_clock.clock().advance(std::chrono::milliseconds(6));
  transport::Reactor::global().poke();
  future.wait();
  EXPECT_THROW(future.get(), DeadlineExceeded);

  // The cancellation bumped both the shared deadline counter and the
  // async-specific one — and did NOT record a completion latency sample
  // (the call never completed).
  EXPECT_EQ(counter_value("rmi.async.deadline_cancelled"),
            cancelled_before + 1);
  EXPECT_EQ(counter_value("rmi.deadline_exceeded"), deadline_before + 1);
  EXPECT_EQ(histogram->count(), samples_before);

  servant->release();
}

}  // namespace
}  // namespace ohpx
