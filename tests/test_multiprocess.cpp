// End-to-end multi-process deployment test (docs/deployment.md).
//
// Forks the real daemons — one ohpx-named directory and two ohpx-hostd
// replicas advertising svc/echo — then drives traffic from an in-process
// client through a ReplicaPointer and kill -9's the replica the client is
// bound to mid-stream.  The assertions are the deployment story's
// acceptance criteria:
//   - every acknowledged call returned the right answer (no loss),
//   - the pointer failed over at least once,
//   - attempts == calls + failovers (each failover cost exactly the one
//     attempt that hit the dying replica),
//   - the directory no longer lists the dead replica afterwards.
//
// The daemon binaries come from the OHPX_NAMED_BIN / OHPX_HOSTD_BIN
// environment variables (set by tests/CMakeLists.txt from the build
// tree); the test skips when they are absent so the suite still runs
// from a bare test binary.
#include <gtest/gtest.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "ohpx/naming/failover.hpp"
#include "ohpx/naming/name_client.hpp"
#include "ohpx/ohpx.hpp"
#include "ohpx/scenario/echo.hpp"

namespace ohpx {
namespace {

// A forked daemon with its stdout captured through a pipe.  Killed with
// SIGKILL and reaped on destruction unless already reaped.
struct Child {
  pid_t pid = -1;
  int out = -1;

  Child() = default;
  Child(Child&& other) noexcept : pid(other.pid), out(other.out) {
    other.pid = -1;
    other.out = -1;
  }
  Child& operator=(Child&& other) noexcept {
    if (this != &other) {
      reap(SIGKILL);
      pid = other.pid;
      out = other.out;
      other.pid = -1;
      other.out = -1;
    }
    return *this;
  }
  Child(const Child&) = delete;
  Child& operator=(const Child&) = delete;

  ~Child() { reap(SIGKILL); }

  void reap(int sig) {
    if (pid > 0) {
      ::kill(pid, sig);
      ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
    if (out >= 0) {
      ::close(out);
      out = -1;
    }
  }
};

Child spawn(const std::string& bin, const std::vector<std::string>& args) {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) return {};
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return {};
  }
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(bin.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(bin.c_str(), argv.data());
    _exit(127);
  }
  ::close(fds[1]);
  Child child;
  child.pid = pid;
  child.out = fds[0];
  return child;
}

// Reads one '\n'-terminated line from the child's stdout, waiting up to
// ten seconds for it — a daemon that dies before printing READY fails
// the test instead of hanging it.
std::string read_line(int fd) {
  std::string line;
  char byte = 0;
  while (true) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (::poll(&pfd, 1, 10'000) <= 0) return line;
    const ssize_t n = ::read(fd, &byte, 1);
    if (n <= 0 || byte == '\n') return line;
    line.push_back(byte);
  }
}

std::string reversed(const std::string& text) {
  return std::string(text.rbegin(), text.rend());
}

TEST(MultiProcess, KillNineFailoverLosesNoAcknowledgedCalls) {
  const char* named_bin = std::getenv("OHPX_NAMED_BIN");
  const char* hostd_bin = std::getenv("OHPX_HOSTD_BIN");
  if (named_bin == nullptr || hostd_bin == nullptr) {
    GTEST_SKIP() << "OHPX_NAMED_BIN / OHPX_HOSTD_BIN not set";
  }

  Child named = spawn(named_bin, {"--sweep-ms", "200"});
  ASSERT_GT(named.pid, 0);
  unsigned named_port = 0;
  char uri_buf[128] = {0};
  ASSERT_EQ(std::sscanf(read_line(named.out).c_str(), "READY %u %127s",
                        &named_port, uri_buf),
            2)
      << "ohpx-named did not come up";
  const std::string named_uri = "127.0.0.1:" + std::to_string(named_port);

  // Spawn the replicas one at a time: hostd prints READY only after its
  // advertise() registered, so waiting on each line pins the directory's
  // insertion order (a first, b second) — which makes the client's first
  // bind and its failover target deterministic.
  const auto spawn_replica = [&](const std::string& machine) {
    return spawn(hostd_bin, {"--named", named_uri, "--machine", machine,
                             "--serve", "svc/echo"});
  };
  struct Replica {
    Child child;
    int pid = 0;
    unsigned port = 0;
  };
  Replica replicas[2];
  const char* machines[2] = {"srv-a", "srv-b"};
  for (int i = 0; i < 2; ++i) {
    replicas[i].child = spawn_replica(machines[i]);
    ASSERT_GT(replicas[i].child.pid, 0);
    unsigned long long replica_id = 0;
    ASSERT_EQ(std::sscanf(read_line(replicas[i].child.out).c_str(),
                          "READY %d %u %llu", &replicas[i].pid,
                          &replicas[i].port, &replica_id),
              3)
        << machines[i] << " did not come up";
    EXPECT_EQ(replicas[i].pid, static_cast<int>(replicas[i].child.pid));
  }

  runtime::World world;
  const netsim::LanId lan = world.add_lan("client-lan");
  orb::Context& ctx = world.create_context(world.add_machine("client", lan));
  naming::NameClient names(ctx, named_uri);
  naming::ReplicaPointer<scenario::EchoStub> echo(ctx, names, "svc/echo");

  constexpr int kCalls = 120;
  constexpr int kKillAt = 40;
  unsigned killed_port = 0;
  for (int i = 0; i < kCalls; ++i) {
    if (i == kKillAt) {
      // kill -9 whichever replica the client is actually bound to — the
      // directory keeps its (now stale) lease until report_dead, which
      // is exactly the window failover has to cross.
      const unsigned bound_port = echo.current_ref().home().tcp_port;
      Replica& victim =
          bound_port == replicas[0].port ? replicas[0] : replicas[1];
      ASSERT_EQ(victim.port, bound_port);
      victim.child.reap(SIGKILL);
      killed_port = bound_port;
    }
    const std::string text = "call-" + std::to_string(i);
    std::string out;
    try {
      out = echo.call(
          [&](scenario::EchoStub& stub) { return stub.reverse(text); });
    } catch (const Error& e) {
      FAIL() << "call " << i << " escaped: " << e.what() << " (named "
             << named_port << ", a " << replicas[0].port << ", b "
             << replicas[1].port << ", bound "
             << echo.current_ref().home().tcp_port << ")";
    }
    ASSERT_EQ(out, reversed(text)) << "call " << i << " corrupted";
  }

  EXPECT_GE(echo.failovers(), 1u);
  EXPECT_EQ(echo.attempts(), kCalls + echo.failovers())
      << "an acknowledged call was lost or double-counted across the kill";
  EXPECT_NE(echo.current_ref().home().tcp_port, killed_port);

  // report_dead pruned the victim immediately — no lease wait.
  const auto [version, live] = names.resolve_all("svc/echo");
  ASSERT_EQ(live.size(), 1u);
  EXPECT_NE(live[0].home().tcp_port, killed_port);
  EXPECT_GT(version, 0u);
}

}  // namespace
}  // namespace ohpx
