// Cross-module property tests (TEST_P sweeps):
//  * protocol selection invariant over every machine-pair placement of the
//    Figure 4 topology — the selected protocol must always be the first
//    table entry whose applicability predicate holds;
//  * end-to-end echo over every protocol × payload-size grid;
//  * capability-chain identity through the *full* RMI pipeline rather than
//    in isolation.
#include <gtest/gtest.h>

#include "ohpx/capability/builtin/authentication.hpp"
#include "ohpx/capability/builtin/checksum.hpp"
#include "ohpx/capability/builtin/compression.hpp"
#include "ohpx/capability/builtin/encryption.hpp"
#include "ohpx/capability/builtin/fault.hpp"
#include "ohpx/capability/builtin/lease.hpp"
#include "ohpx/capability/builtin/quota.hpp"
#include "ohpx/common/rng.hpp"
#include "ohpx/metrics/metrics.hpp"
#include "ohpx/resilience/fault_plan.hpp"
#include "ohpx/resilience/retry.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/runtime/migration.hpp"
#include "ohpx/scenario/counter.hpp"
#include "ohpx/scenario/echo.hpp"
#include "ohpx/scenario/figure4.hpp"

namespace ohpx {
namespace {

using scenario::EchoPointer;
using scenario::EchoServant;

std::vector<std::int32_t> pattern_values(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::int32_t> values(n);
  for (auto& v : values) v = static_cast<std::int32_t>(rng.next());
  return values;
}

// ---- selection invariant across all placements ------------------------------------

// For every machine the server can sit on, the protocol chosen by a client
// on M0 must equal the first applicable entry computed from first
// principles (the paper's §3.2 selection rule).
TEST(SelectionInvariant, FirstApplicableAcrossAllPlacements) {
  scenario::Figure4Scenario fig(netsim::atm_155(), netsim::wan_t3());
  EchoPointer gp = fig.client_pointer();

  const auto expected_for = [&](netsim::MachineId server) -> std::string {
    netsim::Placement placement{fig.m0(), server, &fig.world().topology()};
    // Table: glue[quota(cross_lan), auth(cross_campus)], glue[quota],
    // shm, nexus-tcp.
    if (!placement.same_campus() && !placement.same_lan()) {
      return "glue[quota,authentication]->nexus-tcp";
    }
    if (!placement.same_lan()) {
      return "glue[quota]->nexus-tcp";
    }
    if (placement.same_machine()) {
      return "shm";
    }
    return "nexus-tcp";
  };

  const std::vector<netsim::MachineId> stations = {fig.m2(), fig.m3(), fig.m0(),
                                                   fig.m1(), fig.m3(), fig.m2()};
  for (netsim::MachineId station : stations) {
    if (fig.server_machine() != station) fig.migrate_to(station);
    EXPECT_EQ(gp->probe_protocol(), expected_for(station))
        << "server on machine " << station;
    // And the probe agrees with what an actual call uses.
    gp->ping();
    EXPECT_EQ(gp->last_protocol(), expected_for(station));
  }
}

// ---- echo grid: protocol × payload size ---------------------------------------------

enum class Transport { shm, nexus, tcp, glue_full };

struct GridCase {
  Transport transport;
  std::size_t elements;
};

GridCase gc(Transport transport, std::size_t elements) {
  return GridCase{transport, elements};
}

std::string grid_case_name(const ::testing::TestParamInfo<GridCase>& info) {
  static constexpr const char* kNames[] = {"shm", "nexus", "tcp", "glue"};
  return std::string(kNames[static_cast<int>(info.param.transport)]) + "_" +
         std::to_string(info.param.elements);
}

class EchoGrid : public ::testing::TestWithParam<GridCase> {
 public:
  // Owned via a slot (not a destructor-run static) so teardown happens
  // inside main(), where the contexts can still safely reach the
  // function-local singletons their destructors use.
  static runtime::World*& world_slot() {
    static runtime::World* w = nullptr;
    return w;
  }

 protected:
  static runtime::World& world() {
    auto*& w = world_slot();
    if (w == nullptr) {
      w = new runtime::World();
      const auto lan = w->add_lan("lan");
      machine_a() = w->add_machine("a", lan);
      machine_b() = w->add_machine("b", lan);
    }
    return *w;
  }
  static netsim::MachineId& machine_a() {
    static netsim::MachineId m;
    return m;
  }
  static netsim::MachineId& machine_b() {
    static netsim::MachineId m;
    return m;
  }
};

// Destroys the shared world after the last test so the TCP listeners join
// their connection threads; TSan reports them as leaked otherwise.
class WorldTeardown : public ::testing::Environment {
 public:
  void TearDown() override {
    delete EchoGrid::world_slot();
    EchoGrid::world_slot() = nullptr;
  }
};
[[maybe_unused]] const auto* const kWorldTeardown =
    ::testing::AddGlobalTestEnvironment(new WorldTeardown);

TEST_P(EchoGrid, RoundTripsExactly) {
  const auto param = GetParam();
  auto& w = world();

  orb::Context& client = w.create_context(machine_a());
  orb::Context& server = w.create_context(
      param.transport == Transport::shm ? machine_a() : machine_b());

  orb::RefBuilder builder(server, std::make_shared<EchoServant>());
  std::string expected_protocol;
  switch (param.transport) {
    case Transport::shm:
      builder.shm();
      expected_protocol = "shm";
      break;
    case Transport::nexus:
      builder.nexus();
      expected_protocol = "nexus-tcp";
      break;
    case Transport::tcp:
      server.enable_tcp();
      builder.tcp();
      expected_protocol = "tcp";
      break;
    case Transport::glue_full: {
      const auto key = crypto::Key128::from_seed(1);
      builder.glue({std::make_shared<cap::CompressionCapability>(
                        compress::CodecId::lz),
                    std::make_shared<cap::EncryptionCapability>(key),
                    std::make_shared<cap::AuthenticationCapability>(
                        key, "grid", cap::Scope::always),
                    std::make_shared<cap::ChecksumCapability>()},
                   "nexus-tcp");
      expected_protocol =
          "glue[compression,encryption,authentication,checksum]->nexus-tcp";
      break;
    }
  }

  EchoPointer gp(client, builder.build());
  const auto values =
      pattern_values(param.elements, param.elements * 31 + 7);
  EXPECT_EQ(gp->echo(values), values);
  EXPECT_EQ(gp->last_protocol(), expected_protocol);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EchoGrid,
    ::testing::Values(
        gc(Transport::shm, 0), gc(Transport::shm, 1),
        gc(Transport::shm, 1000), gc(Transport::shm, 100000),
        gc(Transport::nexus, 0), gc(Transport::nexus, 1),
        gc(Transport::nexus, 1000), gc(Transport::nexus, 100000),
        gc(Transport::tcp, 0), gc(Transport::tcp, 1),
        gc(Transport::tcp, 1000), gc(Transport::tcp, 100000),
        gc(Transport::glue_full, 0), gc(Transport::glue_full, 1),
        gc(Transport::glue_full, 1000),
        gc(Transport::glue_full, 100000)),
    grid_case_name);

// ---- migration churn: state survives arbitrary hop sequences --------------------------

class MigrationChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MigrationChurn, CounterSurvivesRandomHops) {
  Xoshiro256 rng(GetParam());

  runtime::World world;
  const auto lan = world.add_lan("lan");
  std::vector<orb::Context*> contexts;
  for (int i = 0; i < 4; ++i) {
    const auto machine = world.add_machine("m" + std::to_string(i), lan);
    contexts.push_back(&world.create_context(machine));
  }
  orb::Context& client = world.create_context(world.add_machine("cl", lan));

  auto servant = std::make_shared<scenario::CounterServant>();
  const orb::ObjectRef ref = orb::RefBuilder(*contexts[0], servant).build();
  scenario::CounterPointer gp(client, ref);

  std::int64_t expected = 0;
  for (int hop = 0; hop < 12; ++hop) {
    const std::int64_t delta = static_cast<std::int64_t>(rng.next_below(100));
    expected += delta;
    EXPECT_EQ(gp->add(delta), expected);

    orb::Context* from = world.find_context_of(ref.object_id());
    orb::Context* to = contexts[rng.next_below(contexts.size())];
    if (to != from) {
      runtime::migrate_shared(ref.object_id(), *from, *to);
    }
    EXPECT_EQ(gp->get(), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationChurn,
                         ::testing::Values(7, 77, 777, 7777));

// ---- retry invariant: attempts never exceed the policy ----------------------------

std::uint64_t retries_counter() {
  return metrics::MetricsRegistry::global().counter("rmi.retries");
}

struct RetryCase {
  int max_attempts;
  int consecutive_drops;
};

std::string retry_case_name(const ::testing::TestParamInfo<RetryCase>& info) {
  return "max" + std::to_string(info.param.max_attempts) + "_drops" +
         std::to_string(info.param.consecutive_drops);
}

class RetrySweep : public ::testing::TestWithParam<RetryCase> {};

// For every (policy, fault-schedule) pair: wire attempts for one logical
// call never exceed policy.max_attempts — the call either outlasts the
// scripted drops or gives up exactly at the budget, never later.
TEST_P(RetrySweep, AttemptsAreBoundedByThePolicy) {
  const auto param = GetParam();
  runtime::World world;
  const auto lan = world.add_lan("lan");
  orb::Context& client = world.create_context(world.add_machine("client", lan));
  orb::Context& server = world.create_context(world.add_machine("server", lan));
  EchoPointer gp(client,
                 orb::RefBuilder(server, std::make_shared<EchoServant>())
                     .nexus()
                     .build());
  resilience::RetryPolicy policy;
  policy.max_attempts = param.max_attempts;
  gp->set_retry_policy(policy);

  resilience::ScopedFaultPlan plan;
  resilience::FaultSchedule schedule;
  for (int i = 0; i < param.consecutive_drops; ++i) {
    schedule.scripted.emplace_back(static_cast<std::uint64_t>(i),
                                   resilience::FaultKind::drop);
  }
  plan.add(server.endpoint_name(), schedule);

  if (param.consecutive_drops < param.max_attempts) {
    EXPECT_EQ(gp->ping(), 1u) << "the policy outlasts the drops";
    EXPECT_EQ(resilience::FaultInjector::instance().call_count(
                  server.endpoint_name()),
              static_cast<std::uint64_t>(param.consecutive_drops) + 1);
  } else {
    EXPECT_THROW(gp->ping(), TransportError);
    EXPECT_EQ(resilience::FaultInjector::instance().call_count(
                  server.endpoint_name()),
              static_cast<std::uint64_t>(param.max_attempts))
        << "gave up exactly at the attempt budget, not one call later";
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyBySchedule, RetrySweep,
    ::testing::Values(RetryCase{1, 0}, RetryCase{1, 1}, RetryCase{2, 1},
                      RetryCase{2, 2}, RetryCase{3, 2}, RetryCase{3, 6},
                      RetryCase{6, 5}, RetryCase{8, 8}),
    retry_case_name);

// The same bound holds per logical call under seeded (rate-based) fault
// schedules: observed attempts = 1 + the rmi.retries delta for that call.
TEST(RetrySweepRates, EveryCallStaysWithinTheAttemptBudget) {
  for (const int max_attempts : {1, 2, 4}) {
    runtime::World world;
    const auto lan = world.add_lan("lan");
    orb::Context& client =
        world.create_context(world.add_machine("client", lan));
    orb::Context& server =
        world.create_context(world.add_machine("server", lan));
    EchoPointer gp(client,
                   orb::RefBuilder(server, std::make_shared<EchoServant>())
                       .nexus()
                       .build());
    resilience::RetryPolicy policy;
    policy.max_attempts = max_attempts;
    gp->set_retry_policy(policy);

    resilience::ScopedFaultPlan plan;
    resilience::FaultSchedule schedule;
    schedule.drop_rate = 0.4;
    schedule.seed = 0xabcULL + static_cast<std::uint64_t>(max_attempts);
    plan.add(server.endpoint_name(), schedule);

    for (int call = 0; call < 60; ++call) {
      const std::uint64_t before = retries_counter();
      try {
        gp->ping();
      } catch (const TransportError&) {
        // An exhausted budget is fine; exceeding it is not.
      }
      const std::uint64_t attempts = retries_counter() - before + 1;
      ASSERT_LE(attempts, static_cast<std::uint64_t>(max_attempts))
          << "call " << call << " under max_attempts=" << max_attempts;
    }
  }
}

// Non-retryable refusals — an injected capability fault, an exhausted
// quota, an expired lease — are answers, not accidents: exactly one
// attempt, zero retries, regardless of how generous the policy is.
TEST(RetrySweepRates, NonRetryableRefusalsAreNeverRetried) {
  struct Refusal {
    const char* name;
    cap::CapabilityPtr capability;
  };
  const std::vector<Refusal> refusals = {
      {"fault", std::make_shared<cap::FaultCapability>(1u)},
      {"quota", std::make_shared<cap::QuotaCapability>(0u)},
      {"lease",
       std::make_shared<cap::LeaseCapability>(std::chrono::milliseconds(0))},
  };

  for (const auto& refusal : refusals) {
    runtime::World world;
    const auto lan = world.add_lan("lan");
    orb::Context& client =
        world.create_context(world.add_machine("client", lan));
    orb::Context& server =
        world.create_context(world.add_machine("server", lan));
    EchoPointer gp(client,
                   orb::RefBuilder(server, std::make_shared<EchoServant>())
                       .glue({refusal.capability})
                       .build());
    resilience::RetryPolicy generous;
    generous.max_attempts = 6;
    gp->set_retry_policy(generous);

    const std::uint64_t before = retries_counter();
    EXPECT_THROW(gp->ping(), CapabilityDenied) << refusal.name;
    EXPECT_EQ(retries_counter(), before)
        << refusal.name << ": a refusal of authority must not be retried";
  }
}

}  // namespace
}  // namespace ohpx
