// Tests for the metrics module and the ORB's instrumentation of it.
#include <gtest/gtest.h>

#include <thread>

#include "ohpx/metrics/metrics.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/echo.hpp"
#include "ohpx/transport/reactor.hpp"

namespace ohpx::metrics {
namespace {

using scenario::EchoPointer;
using scenario::EchoServant;
using scenario::EchoStub;

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.mean().count(), 0);
  EXPECT_EQ(histogram.approximate_quantile_us(0.5), 0u);
}

TEST(Histogram, RecordsAndBuckets) {
  LatencyHistogram histogram;
  histogram.record(std::chrono::microseconds(1));    // bucket 0 (<2us)
  histogram.record(std::chrono::microseconds(3));    // [2,4)
  histogram.record(std::chrono::microseconds(100));  // [64,128)
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.total(), Nanoseconds(104'000));

  const auto buckets = histogram.buckets();
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  std::uint64_t spread = 0;
  for (const auto b : buckets) spread += b;
  EXPECT_EQ(spread, 3u);
}

TEST(Histogram, QuantileMonotone) {
  LatencyHistogram histogram;
  for (int i = 0; i < 90; ++i) histogram.record(std::chrono::microseconds(10));
  for (int i = 0; i < 10; ++i) histogram.record(std::chrono::milliseconds(10));
  const auto p50 = histogram.approximate_quantile_us(0.5);
  const auto p99 = histogram.approximate_quantile_us(0.99);
  EXPECT_LE(p50, 16u);      // 10us lands in [8,16)
  EXPECT_GE(p99, 8192u);    // 10ms is way up the scale
  EXPECT_LE(p50, p99);
}

TEST(Registry, CountersAccumulate) {
  MetricsRegistry registry;
  registry.increment("a");
  registry.increment("a", 4);
  registry.increment("b");
  EXPECT_EQ(registry.counter("a"), 5u);
  EXPECT_EQ(registry.counter("b"), 1u);
  EXPECT_EQ(registry.counter("missing"), 0u);
  registry.reset();
  EXPECT_EQ(registry.counter("a"), 0u);
}

TEST(Registry, LatencyByName) {
  MetricsRegistry registry;
  registry.record_latency("x", std::chrono::microseconds(5));
  registry.record_latency("x", std::chrono::microseconds(15));
  const LatencyHistogram* histogram = registry.histogram("x");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->count(), 2u);
  EXPECT_EQ(registry.histogram("missing"), nullptr);
}

TEST(Registry, SnapshotCapturesEverything) {
  MetricsRegistry registry;
  registry.increment("calls", 3);
  registry.record_latency("lat", std::chrono::microseconds(10));
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("calls"), 3u);
  EXPECT_EQ(snap.latency_counts.at("lat"), 1u);
  EXPECT_NEAR(snap.latency_mean_us.at("lat"), 10.0, 0.5);
  // 10us lands in bucket [8,16): the approximate quantiles report the
  // bucket upper bound for every percentile of a single-sample histogram.
  EXPECT_EQ(snap.latency_quantiles.at("lat").p50_us, 16u);
  EXPECT_EQ(snap.latency_quantiles.at("lat").p95_us, 16u);
  EXPECT_EQ(snap.latency_quantiles.at("lat").p99_us, 16u);
}

TEST(Registry, ScopedLatencyViaInternedHandle) {
  MetricsRegistry registry;
  LatencyHistogram* handle = registry.latency_handle("interned");
  { ScopedLatency sample(handle); }
  EXPECT_EQ(handle->count(), 1u);
  EXPECT_EQ(registry.histogram("interned"), handle);
}

TEST(Registry, ScopedLatencyRecords) {
  MetricsRegistry registry;
  {
    ScopedLatency sample(registry, "scoped");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(registry.histogram("scoped"), nullptr);
  EXPECT_EQ(registry.histogram("scoped")->count(), 1u);
  EXPECT_GE(registry.histogram("scoped")->mean().count(), 500'000);
}

TEST(Registry, ThreadSafeIncrements) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) registry.increment("shared");
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("shared"), 4000u);
}

TEST(Registry, FormatSnapshotReadable) {
  MetricsRegistry registry;
  registry.increment("rmi.calls", 12);
  registry.record_latency("rmi.latency", std::chrono::microseconds(30));
  const std::string text = format_snapshot(registry.snapshot());
  EXPECT_NE(text.find("rmi.calls"), std::string::npos);
  EXPECT_NE(text.find("12"), std::string::npos);
  EXPECT_NE(text.find("rmi.latency"), std::string::npos);
  EXPECT_NE(text.find("samples"), std::string::npos);
  // Tail columns: 30us lands in bucket [16,32), so every quantile reports
  // the 32us bucket bound.
  EXPECT_NE(text.find("p50 32 us"), std::string::npos);
  EXPECT_NE(text.find("p95 32 us"), std::string::npos);
  EXPECT_NE(text.find("p99 32 us"), std::string::npos);
}

// ---- ORB instrumentation -------------------------------------------------------

TEST(OrbInstrumentation, CallsAndProtocolsCounted) {
  auto& registry = MetricsRegistry::global();
  registry.reset();

  runtime::World world;
  const auto lan = world.add_lan("lan");
  const auto m0 = world.add_machine("m0", lan);
  const auto m1 = world.add_machine("m1", lan);
  orb::Context& client = world.create_context(m0);
  orb::Context& server = world.create_context(m1);

  auto ref = orb::RefBuilder(server, std::make_shared<EchoServant>()).build();
  EchoPointer gp(client, ref);
  gp->ping();
  gp->ping();

  EXPECT_EQ(registry.counter("rmi.calls"), 2u);
  EXPECT_EQ(registry.counter("rmi.calls.nexus-tcp"), 2u);
  EXPECT_EQ(registry.counter("server.requests"), 2u);
  ASSERT_NE(registry.histogram("rmi.latency"), nullptr);
  EXPECT_EQ(registry.histogram("rmi.latency")->count(), 2u);

  try {
    gp->fail();
  } catch (const RemoteError&) {
  }
  EXPECT_EQ(registry.counter("rmi.errors.remote_application_error"), 1u);
  EXPECT_EQ(registry.counter("server.errors.remote_application_error"), 1u);
  registry.reset();
}

// The reactor's internal counters must surface in the ordinary registry
// snapshot — the introspection exporter (and ohpx-top) reads nothing else.
TEST(OrbInstrumentation, ReactorCountersSurfaceInSnapshot) {
  auto& registry = MetricsRegistry::global();

  runtime::World world;
  const auto lan = world.add_lan("lan");
  const auto m0 = world.add_machine("m0", lan);
  const auto m1 = world.add_machine("m1", lan);
  orb::Context& client = world.create_context(m0);
  orb::Context& server = world.create_context(m1);
  server.enable_tcp();

  auto ref = orb::RefBuilder(server, std::make_shared<EchoServant>())
                 .tcp()
                 .build();
  EchoStub stub(client, ref);
  const std::uint64_t batches_before = registry.counter("reactor.batches");
  const std::uint64_t frames_before = registry.counter("reactor.frames");
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(stub.call_async<std::uint64_t>(scenario::EchoServant::kPing)
                  .get(),
              static_cast<std::uint64_t>(i + 1));
  }

  const MetricsSnapshot snap = registry.snapshot();
  // Accumulating counters moved with the traffic.
  EXPECT_GE(snap.counters.at("reactor.batches"), batches_before + 4);
  EXPECT_GE(snap.counters.at("reactor.frames"), frames_before + 4);
  // Histograms: every tick samples loop lag; every gather batch samples
  // its frame count.
  EXPECT_GE(snap.latency_counts.at("reactor.loop_lag"), 1u);
  EXPECT_GE(snap.latency_counts.at("reactor.batch_frames"), 1u);
  // Gauges and cold-path counters are interned at reactor construction,
  // so their keys exist (possibly zero) in every snapshot thereafter.
  EXPECT_EQ(snap.counters.count("reactor.inflight"), 1u);
  EXPECT_EQ(snap.counters.count("reactor.connections"), 1u);
  EXPECT_EQ(snap.counters.count("reactor.backpressure"), 1u);
  EXPECT_EQ(snap.counters.count("reactor.reconnects"), 1u);
  EXPECT_EQ(snap.counters.count("rmi.reactor.stall"), 1u);
}

// Per-context dispatch series ride alongside the aggregate server ones.
// Dispatch timing is armed by the introspection plane (cost contract in
// metrics.hpp); the test arms it the same way a process with an
// exporter would be.
TEST(OrbInstrumentation, PerContextDispatchSeries) {
  enable_deep_timing();
  auto& registry = MetricsRegistry::global();

  runtime::World world;
  const auto lan = world.add_lan("lan");
  const auto m0 = world.add_machine("m0", lan);
  const auto m1 = world.add_machine("m1", lan);
  orb::Context& client = world.create_context(m0);
  orb::Context& server = world.create_context(m1);

  auto ref = orb::RefBuilder(server, std::make_shared<EchoServant>()).build();
  EchoPointer gp(client, ref);
  const std::string requests_key =
      "server.ctx.requests." + std::to_string(server.id());
  const std::string latency_key =
      "server.ctx.latency." + std::to_string(server.id());
  const std::uint64_t requests_before = registry.counter(requests_key);
  gp->ping();
  gp->ping();
  gp->ping();

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at(requests_key), requests_before + 3);
  EXPECT_GE(snap.latency_counts.at(latency_key), 3u);
  EXPECT_GE(snap.latency_counts.at("server.dispatch"),
            snap.latency_counts.at(latency_key));
}

}  // namespace
}  // namespace ohpx::metrics
