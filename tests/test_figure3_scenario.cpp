// The paper's Figure 3 scenario (§4.3), assertion-checked:
//
// "Server object S0 is being accessed by two client processes P1 and P2.
//  ... the server object requires all clients accessing it from outside
//  its LAN to authenticate themselves for each remote request; while it
//  lets local clients access its resources without any authentication.
//  The server provides both the clients with copies of a GP whose OR has
//  two protocols, a simple Nexus based communication protocol, and a glue
//  protocol ... with preference given to the latter."
//
// Initially P1 shares the server's LAN (plain nexus) and P2 is remote
// (authenticated glue).  After the balancer migrates S0 onto P2's LAN the
// roles swap — with zero changes to either client.
#include <gtest/gtest.h>

#include "ohpx/capability/builtin/authentication.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/runtime/balancer.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/echo.hpp"

namespace ohpx {
namespace {

using scenario::EchoPointer;
using scenario::EchoServant;

class Figure3 : public ::testing::Test {
 protected:
  void SetUp() override {
    lan1_ = world_.add_lan("lan-1");
    lan2_ = world_.add_lan("lan-2");
    m_server_ = world_.add_machine("s0-box", lan1_);
    m_p1_ = world_.add_machine("p1-box", lan1_);
    m_p2_ = world_.add_machine("p2-box", lan2_);

    server_ctx_ = &world_.create_context(m_server_);
    p1_ctx_ = &world_.create_context(m_p1_);
    p2_ctx_ = &world_.create_context(m_p2_);

    // One OR for everyone: glue[authentication(cross_lan)] preferred,
    // plain nexus as the local fallback.
    auto auth = std::make_shared<cap::AuthenticationCapability>(
        crypto::Key128::from_seed(0xf13), "figure3", cap::Scope::cross_lan);
    ref_ = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
               .glue({auth}, "nexus-tcp")
               .nexus()
               .build();
  }

  runtime::World world_;
  netsim::LanId lan1_{}, lan2_{};
  netsim::MachineId m_server_{}, m_p1_{}, m_p2_{};
  orb::Context* server_ctx_ = nullptr;
  orb::Context* p1_ctx_ = nullptr;
  orb::Context* p2_ctx_ = nullptr;
  orb::ObjectRef ref_;
};

TEST_F(Figure3, RolesSwapOnMigration) {
  EchoPointer p1(*p1_ctx_, ref_);
  EchoPointer p2(*p2_ctx_, ref_);

  // Initial placement: P1 local → plain nexus; P2 remote → authenticated.
  p1->ping();
  p2->ping();
  EXPECT_EQ(p1->last_protocol(), "nexus-tcp");
  EXPECT_EQ(p2->last_protocol(), "glue[authentication]->nexus-tcp");

  // "The load on the server's machine increases beyond a high-water mark
  // and the application decides to migrate S0 to a machine residing on
  // the LAN of client P2."
  runtime::LoadBalancer balancer(world_, {.high_water = 0.75,
                                          .target_water = 0.5});
  balancer.track(ref_.object_id(), 0.5);
  world_.topology().set_load(m_server_, 0.95);
  world_.topology().set_load(m_p1_, 0.60);  // busy too: not a destination
  world_.topology().set_load(m_p2_, 0.10);

  const auto events = balancer.rebalance_once();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].to_machine, m_p2_);

  // Post-migration: P2 is local (auth non-applicable → nexus), P1 remote
  // (auth applicable → glue).  Same GPs, no client code changed.
  p1->ping();
  p2->ping();
  EXPECT_EQ(p1->last_protocol(), "glue[authentication]->nexus-tcp");
  EXPECT_EQ(p2->last_protocol(), "nexus-tcp");
}

TEST_F(Figure3, ShmJoinsWhenColocated) {
  // A third protocol in the table puts the same-machine fast path in
  // play: a client context on the server's own machine picks shm while
  // the remote clients' choices are unchanged.
  auto auth = std::make_shared<cap::AuthenticationCapability>(
      crypto::Key128::from_seed(0xf13), "figure3", cap::Scope::cross_lan);
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({auth}, "nexus-tcp")
                 .shm()
                 .nexus()
                 .build();

  orb::Context& colocated = world_.create_context(m_server_);
  EchoPointer local(colocated, ref);
  EchoPointer remote(*p2_ctx_, ref);
  local->ping();
  remote->ping();
  EXPECT_EQ(local->last_protocol(), "shm");
  EXPECT_EQ(remote->last_protocol(), "glue[authentication]->nexus-tcp");
}

TEST_F(Figure3, AuthenticatedPathActuallyAuthenticates) {
  // Paranoia check that the cross-LAN path really runs the MAC: a client
  // whose registry builds the bearer from a *different* key is refused.
  EchoPointer p2(*p2_ctx_, ref_);
  EXPECT_EQ(p2->ping(), 1u);

  // Tamper with the OR's glue entry: flip a byte inside the embedded
  // authentication key so client and server copies disagree.
  orb::ObjectRef tampered = ref_;
  auto& entry = const_cast<proto::ProtocolEntry&>(tampered.table().at(0));
  ASSERT_FALSE(entry.proto_data.empty());
  entry.proto_data[entry.proto_data.size() / 2] ^= 0x01;

  try {
    EchoPointer evil(*p2_ctx_, tampered);
    evil->ping();
    FAIL() << "tampered reference should not authenticate";
  } catch (const Error&) {
    // Either the proto-data fails to parse (WireError/ProtocolError) or
    // the MAC verification refuses the call (CapabilityDenied) — any
    // typed refusal is correct; silent acceptance is the bug.
  }
}

}  // namespace
}  // namespace ohpx
