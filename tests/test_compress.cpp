// Unit tests for the compression codecs: round trips over characteristic
// payload shapes, compression-ratio expectations, and malformed-input
// hardening (every decoder path must fail cleanly, never read or write out
// of bounds).
#include <gtest/gtest.h>

#include "ohpx/common/error.hpp"
#include "ohpx/common/rng.hpp"
#include "ohpx/compress/codec.hpp"

namespace ohpx::compress {
namespace {

Bytes runs_payload(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>((i / 97) % 5);
  }
  return out;
}

Bytes text_payload(std::size_t n) {
  static constexpr std::string_view kCorpus =
      "typical high-performance distributed applications consist of clients "
      "accessing computational and information resources implemented by "
      "remote servers. ";
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    const std::size_t take = std::min(n - out.size(), kCorpus.size());
    out.insert(out.end(), kCorpus.begin(),
               kCorpus.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

Bytes random_payload(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

// ---- basic round trips ---------------------------------------------------------

class CodecRoundTrip : public ::testing::TestWithParam<CodecId> {};

TEST_P(CodecRoundTrip, EmptyInput) {
  auto codec = make_codec(GetParam());
  EXPECT_TRUE(codec->decompress(codec->compress({})).empty());
}

TEST_P(CodecRoundTrip, SingleByte) {
  auto codec = make_codec(GetParam());
  const Bytes in = {0x42};
  EXPECT_EQ(codec->decompress(codec->compress(in)), in);
}

TEST_P(CodecRoundTrip, Runs) {
  auto codec = make_codec(GetParam());
  const Bytes in = runs_payload(10'000);
  EXPECT_EQ(codec->decompress(codec->compress(in)), in);
}

TEST_P(CodecRoundTrip, Text) {
  auto codec = make_codec(GetParam());
  const Bytes in = text_payload(20'000);
  EXPECT_EQ(codec->decompress(codec->compress(in)), in);
}

TEST_P(CodecRoundTrip, Random) {
  auto codec = make_codec(GetParam());
  const Bytes in = random_payload(20'000, 99);
  EXPECT_EQ(codec->decompress(codec->compress(in)), in);
}

TEST_P(CodecRoundTrip, AllByteValues) {
  auto codec = make_codec(GetParam());
  Bytes in(256 * 4);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::uint8_t>(i % 256);
  }
  EXPECT_EQ(codec->decompress(codec->compress(in)), in);
}

TEST_P(CodecRoundTrip, BoundarySizes) {
  auto codec = make_codec(GetParam());
  // Sizes around token-chunk boundaries (127/128/129, 130/131).
  for (std::size_t n : {2u, 3u, 127u, 128u, 129u, 130u, 131u, 255u, 256u}) {
    Bytes same(n, 0x77);
    EXPECT_EQ(codec->decompress(codec->compress(same)), same) << n;
    Bytes varied = random_payload(n, n);
    EXPECT_EQ(codec->decompress(codec->compress(varied)), varied) << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundTrip,
                         ::testing::Values(CodecId::identity, CodecId::rle,
                                           CodecId::lz),
                         [](const auto& info) {
                           switch (info.param) {
                             case CodecId::identity: return "identity";
                             case CodecId::rle: return "rle";
                             case CodecId::lz: return "lz";
                           }
                           return "unknown";
                         });

// ---- ratios ---------------------------------------------------------------------

TEST(CompressionRatio, RleWinsOnRuns) {
  auto rle = make_rle_codec();
  const Bytes in(100'000, 0xaa);
  const Bytes packed = rle->compress(in);
  EXPECT_LT(packed.size(), in.size() / 20);
}

TEST(CompressionRatio, LzWinsOnText) {
  auto lz = make_lz_codec();
  const Bytes in = text_payload(100'000);
  const Bytes packed = lz->compress(in);
  EXPECT_LT(packed.size(), in.size() / 3);
}

TEST(CompressionRatio, RandomDataGrowsOnlySlightly) {
  auto lz = make_lz_codec();
  const Bytes in = random_payload(100'000, 5);
  const Bytes packed = lz->compress(in);
  // Worst case: header + one extra token byte per 128 literals.
  EXPECT_LT(packed.size(), in.size() + in.size() / 100 + 64);
}

// ---- malformed input hardening ----------------------------------------------------

TEST(Malformed, TooShortForHeader) {
  auto codec = make_lz_codec();
  EXPECT_THROW(codec->decompress({}), WireError);
  EXPECT_THROW(codec->decompress(Bytes{2}), WireError);
  EXPECT_THROW(codec->decompress(Bytes{2, 0, 0}), WireError);
}

TEST(Malformed, CodecIdMismatch) {
  auto rle = make_rle_codec();
  auto lz = make_lz_codec();
  const Bytes packed = rle->compress(bytes_of("data"));
  EXPECT_THROW(lz->decompress(packed), WireError);
}

TEST(Malformed, TruncatedStream) {
  auto lz = make_lz_codec();
  Bytes packed = lz->compress(text_payload(1000));
  packed.resize(packed.size() / 2);
  EXPECT_THROW(lz->decompress(packed), WireError);
}

TEST(Malformed, LzOffsetOutOfRange) {
  // Hand-crafted: declares 8 output bytes, then a match reaching before
  // the start of the output.
  Bytes evil = {static_cast<std::uint8_t>(CodecId::lz), 0, 0, 0, 8,
                0x80,  // match, len = kMinMatch
                0x00, 0x10};  // offset 16 > bytes produced so far (0)
  auto lz = make_lz_codec();
  EXPECT_THROW(lz->decompress(evil), WireError);
}

TEST(Malformed, DeclaredSizeSmallerThanOutput) {
  auto rle = make_rle_codec();
  Bytes packed = rle->compress(Bytes(1000, 1));
  // Shrink the declared original size; decoder must refuse to overflow it.
  packed[4] = 1;
  packed[3] = 0;
  EXPECT_THROW(rle->decompress(packed), WireError);
}

TEST(Malformed, DeclaredSizeLargerThanOutput) {
  auto rle = make_rle_codec();
  Bytes packed = rle->compress(Bytes(10, 7));
  packed[4] = 0xff;  // declares more output than the stream produces
  EXPECT_THROW(rle->decompress(packed), WireError);
}

TEST(Malformed, RleRunMissingValueByte) {
  Bytes evil = {static_cast<std::uint8_t>(CodecId::rle), 0, 0, 0, 3, 0x80};
  auto rle = make_rle_codec();
  EXPECT_THROW(rle->decompress(evil), WireError);
}

TEST(Malformed, UnknownCodecId) {
  Bytes evil = {0x77, 0, 0, 0, 0};
  EXPECT_THROW(peek_codec(evil), WireError);
  EXPECT_THROW(make_codec(static_cast<CodecId>(0x77)), WireError);
}

TEST(PeekCodec, ReadsIdWithoutDecompressing) {
  auto lz = make_lz_codec();
  EXPECT_EQ(peek_codec(lz->compress(bytes_of("x"))), CodecId::lz);
  EXPECT_THROW(peek_codec({}), WireError);
}

// ---- LZ self-referential matches (overlap copy) ------------------------------------

TEST(Lz, OverlappingMatchesDecodeCorrectly) {
  auto lz = make_lz_codec();
  // "abcabcabc..." forces matches whose offset (3) < length.
  Bytes in;
  for (int i = 0; i < 3000; ++i) in.push_back(static_cast<std::uint8_t>("abc"[i % 3]));
  EXPECT_EQ(lz->decompress(lz->compress(in)), in);
}

// ---- randomized property sweep -------------------------------------------------------

class CodecFuzz
    : public ::testing::TestWithParam<std::tuple<CodecId, std::uint64_t>> {};

TEST_P(CodecFuzz, RandomStructuredPayloadsRoundTrip) {
  const auto [id, seed] = GetParam();
  auto codec = make_codec(id);
  Xoshiro256 rng(seed);
  for (int i = 0; i < 20; ++i) {
    // Mix of runs and noise: pick segment lengths and fill styles randomly.
    Bytes in;
    const std::size_t target = rng.next_below(5000);
    while (in.size() < target) {
      const std::size_t seg = 1 + rng.next_below(200);
      if (rng.next_below(2) == 0) {
        in.insert(in.end(), seg, static_cast<std::uint8_t>(rng.next()));
      } else {
        for (std::size_t k = 0; k < seg; ++k) {
          in.push_back(static_cast<std::uint8_t>(rng.next()));
        }
      }
    }
    EXPECT_EQ(codec->decompress(codec->compress(in)), in);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CodecFuzz,
    ::testing::Combine(::testing::Values(CodecId::identity, CodecId::rle,
                                         CodecId::lz),
                       ::testing::Values(101, 202, 303)));

}  // namespace
}  // namespace ohpx::compress
