// Tests for the topology description parser.
#include <gtest/gtest.h>

#include "ohpx/netsim/parser.hpp"

namespace ohpx::netsim {
namespace {

constexpr std::string_view kSample = R"(
# the paper's figure-4 world
lan lab atm155 campus=0
lan annex ethernet100 campus=0
lan uni ethernet100 campus=1

machine bigiron lab
machine ws17 lab
machine annex1 annex
machine cluster uni

wan lab annex atm155
default_wan t3
loopback custom:2000:20
)";

TEST(Parser, ParsesFullDescription) {
  const ParsedTopology parsed = parse_topology(kSample);
  EXPECT_EQ(parsed.lans.size(), 3u);
  EXPECT_EQ(parsed.machines.size(), 4u);

  const Topology& topo = parsed.topology();
  EXPECT_TRUE(topo.same_lan(parsed.machine("bigiron"), parsed.machine("ws17")));
  EXPECT_TRUE(
      topo.same_campus(parsed.machine("bigiron"), parsed.machine("annex1")));
  EXPECT_FALSE(
      topo.same_campus(parsed.machine("bigiron"), parsed.machine("cluster")));

  EXPECT_EQ(topo.link_between(parsed.machine("bigiron"), parsed.machine("ws17"))
                .name,
            "atm-155");
  EXPECT_EQ(
      topo.link_between(parsed.machine("bigiron"), parsed.machine("annex1"))
          .name,
      "atm-155");  // explicit wan directive
  EXPECT_EQ(
      topo.link_between(parsed.machine("bigiron"), parsed.machine("cluster"))
          .name,
      "wan-t3");  // default wan
  EXPECT_EQ(
      topo.link_between(parsed.machine("bigiron"), parsed.machine("bigiron"))
          .name,
      "custom-2000:20");
}

TEST(Parser, CommentsAndBlanksIgnored) {
  const auto parsed = parse_topology("# nothing\n\nlan a # trailing\n");
  EXPECT_EQ(parsed.lans.size(), 1u);
}

TEST(Parser, LinkSpecPresets) {
  EXPECT_EQ(parse_link_spec("ethernet10").name, "ethernet-10");
  EXPECT_EQ(parse_link_spec("ethernet100").name, "ethernet-100");
  EXPECT_EQ(parse_link_spec("atm155").name, "atm-155");
  EXPECT_EQ(parse_link_spec("t3").name, "wan-t3");
  EXPECT_EQ(parse_link_spec("loopback").name, "loopback");
}

TEST(Parser, CustomLinkSpec) {
  const LinkSpec link = parse_link_spec("custom:622:200");
  EXPECT_DOUBLE_EQ(link.bandwidth_bps, 622e6);
  EXPECT_EQ(link.latency, std::chrono::microseconds(200));
}

TEST(Parser, MalformedInputsRejectedWithLineNumbers) {
  const char* bad_cases[] = {
      "bogus directive",
      "lan",                         // missing name
      "lan a\nlan a",                // duplicate LAN
      "machine m nowhere",           // unknown LAN
      "lan a\nmachine m a\nmachine m a",  // duplicate machine
      "lan a\nwan a b t3",           // unknown LAN in wan
      "lan a\nlan b\nwan a b warp",  // unknown link
      "default_wan",                 // missing link
      "loopback",                    // missing link
      "lan a badlink",               // unknown link on lan
      "lan a campus=x",              // bad campus id
  };
  for (const char* text : bad_cases) {
    EXPECT_THROW(parse_topology(text), Error) << text;
  }
}

TEST(Parser, MalformedCustomLinksRejected) {
  EXPECT_THROW(parse_link_spec("custom:abc:10"), Error);
  EXPECT_THROW(parse_link_spec("custom:100"), Error);
  EXPECT_THROW(parse_link_spec("custom:-5:10"), Error);
  EXPECT_THROW(parse_link_spec("warp-drive"), Error);
}

TEST(Parser, LookupFailuresThrow) {
  const auto parsed = parse_topology("lan a\nmachine m a\n");
  EXPECT_THROW(parsed.lan("missing"), Error);
  EXPECT_THROW(parsed.machine("missing"), Error);
  EXPECT_NO_THROW(parsed.lan("a"));
  EXPECT_NO_THROW(parsed.machine("m"));
}

}  // namespace
}  // namespace ohpx::netsim
