// FIG5-ATM: reproduces the paper's Figure 5 — bandwidth vs array size for
// the four protocol configurations over the 155 Mbps ATM link model.
//
// Expected shape (paper §5): the three network series (nexus, glue+timeout,
// glue+timeout+security) coincide — capability overhead vanishes under
// network time — and saturate near the link rate at large sizes; shared
// memory is over an order of magnitude faster.
#include "bench_support.hpp"

namespace ohpx::bench {
namespace {

Figure5World& atm_world() {
  static Figure5World world(netsim::atm_155());
  return world;
}

void Fig5ATM_GlueTimeout(benchmark::State& state) {
  static auto gp = atm_world().glue_timeout();
  run_echo_series(state, gp);
}

void Fig5ATM_GlueTimeoutSecurity(benchmark::State& state) {
  static auto gp = atm_world().glue_timeout_security();
  run_echo_series(state, gp);
}

void Fig5ATM_Nexus(benchmark::State& state) {
  static auto gp = atm_world().nexus();
  run_echo_series(state, gp);
}

void Fig5ATM_SharedMemory(benchmark::State& state) {
  static auto gp = atm_world().shm();
  run_echo_series(state, gp);
}

void configure(benchmark::internal::Benchmark* bench) {
  for (const std::int64_t n : figure5_sizes()) bench->Arg(n);
  bench->UseManualTime()->Iterations(8);
}

BENCHMARK(Fig5ATM_GlueTimeout)->Apply(configure);
BENCHMARK(Fig5ATM_GlueTimeoutSecurity)->Apply(configure);
BENCHMARK(Fig5ATM_Nexus)->Apply(configure);
BENCHMARK(Fig5ATM_SharedMemory)->Apply(configure);

}  // namespace
}  // namespace ohpx::bench

int main(int argc, char** argv) { return ohpx::bench::bench_main(argc, argv); }
