// ABL-MIG-COST: what a migration costs, as a function of object state size.
//
// The paper leans on cheap "pseudo migration"; this ablation quantifies
// both modes on real state (heat-simulation grids):
//   * migrate_shared — pointer hand-off + glue re-registration (O(1) in
//     state size),
//   * migrate_copy   — snapshot/restore through the type registry (O(n)),
// and the post-migration first-call penalty (location re-resolve).
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "ohpx/runtime/migration.hpp"
#include "ohpx/scenario/heatsim.hpp"

namespace ohpx::bench {
namespace {

struct MigrationWorld {
  MigrationWorld() {
    const netsim::LanId lan = world.add_lan("lan");
    a = &world.create_context(world.add_machine("a", lan));
    b = &world.create_context(world.add_machine("b", lan));
    client = &world.create_context(world.add_machine("c", lan));
    runtime::ServantTypeRegistry::instance()
        .register_type<scenario::HeatSimServant>();
  }

  orb::ObjectRef spawn(std::uint32_t grid_side) {
    auto servant = std::make_shared<scenario::HeatSimServant>();
    servant->init(grid_side, grid_side, 10.0);
    return orb::RefBuilder(*a, servant).build();
  }

  runtime::World world;
  orb::Context* a = nullptr;
  orb::Context* b = nullptr;
  orb::Context* client = nullptr;
};

MigrationWorld& migration_world() {
  static MigrationWorld world;
  return world;
}

void Migrate_Shared(benchmark::State& state) {
  auto& world = migration_world();
  const auto side = static_cast<std::uint32_t>(state.range(0));
  const auto ref = world.spawn(side);

  bool at_a = true;
  for (auto _ : state) {
    runtime::migrate_shared(ref.object_id(), at_a ? *world.a : *world.b,
                            at_a ? *world.b : *world.a);
    at_a = !at_a;
  }
  state.counters["state_bytes"] =
      static_cast<double>(side) * side * sizeof(double);
}

void Migrate_Copy(benchmark::State& state) {
  auto& world = migration_world();
  const auto side = static_cast<std::uint32_t>(state.range(0));
  const auto ref = world.spawn(side);

  bool at_a = true;
  for (auto _ : state) {
    runtime::migrate_copy(ref.object_id(), at_a ? *world.a : *world.b,
                          at_a ? *world.b : *world.a);
    at_a = !at_a;
  }
  state.counters["state_bytes"] =
      static_cast<double>(side) * side * sizeof(double);
}

void Migrate_FirstCallAfterMove(benchmark::State& state) {
  auto& world = migration_world();
  const auto ref = world.spawn(64);
  scenario::HeatSimPointer gp(*world.client, ref);
  gp->sample(0, 0);  // warm

  bool at_a = true;
  for (auto _ : state) {
    state.PauseTiming();
    runtime::migrate_shared(ref.object_id(), at_a ? *world.a : *world.b,
                            at_a ? *world.b : *world.a);
    at_a = !at_a;
    state.ResumeTiming();
    benchmark::DoNotOptimize(gp->sample(0, 0));
  }
}

BENCHMARK(Migrate_Shared)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(Migrate_Copy)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(Migrate_FirstCallAfterMove);

}  // namespace
}  // namespace ohpx::bench

int main(int argc, char** argv) { return ohpx::bench::bench_main(argc, argv); }
