// FIG5-ETH: the Ethernet twin of Figure 5.  The paper reports the Ethernet
// results are "virtually identical" in shape to ATM — the same coincidence
// of network series and the same shared-memory gap, with the plateau at the
// (lower) Ethernet rate.
#include "bench_support.hpp"

namespace ohpx::bench {
namespace {

Figure5World& ethernet_world() {
  static Figure5World world(netsim::fast_ethernet_100());
  return world;
}

void Fig5Eth_GlueTimeout(benchmark::State& state) {
  static auto gp = ethernet_world().glue_timeout();
  run_echo_series(state, gp);
}

void Fig5Eth_GlueTimeoutSecurity(benchmark::State& state) {
  static auto gp = ethernet_world().glue_timeout_security();
  run_echo_series(state, gp);
}

void Fig5Eth_Nexus(benchmark::State& state) {
  static auto gp = ethernet_world().nexus();
  run_echo_series(state, gp);
}

void Fig5Eth_SharedMemory(benchmark::State& state) {
  static auto gp = ethernet_world().shm();
  run_echo_series(state, gp);
}

void configure(benchmark::internal::Benchmark* bench) {
  for (const std::int64_t n : figure5_sizes()) bench->Arg(n);
  bench->UseManualTime()->Iterations(8);
}

BENCHMARK(Fig5Eth_GlueTimeout)->Apply(configure);
BENCHMARK(Fig5Eth_GlueTimeoutSecurity)->Apply(configure);
BENCHMARK(Fig5Eth_Nexus)->Apply(configure);
BENCHMARK(Fig5Eth_SharedMemory)->Apply(configure);

}  // namespace
}  // namespace ohpx::bench

int main(int argc, char** argv) { return ohpx::bench::bench_main(argc, argv); }
