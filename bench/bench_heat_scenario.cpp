// ABL-SIM: compute/communicate balance of the paper's motivating workload.
//
// A heat-diffusion simulation runs on the "supercomputer"; a client
// repeatedly (a) advances the simulation and (b) fetches a map.  Swept
// over client placement (same machine / LAN / WAN) and map resolution,
// this shows when remote-access overhead matters for a real simulation:
// step() is compute-bound and placement-insensitive, while fetch_map()
// costs scale with the link — exactly the regime the capabilities model
// targets (expensive WAN clients get compressed/guarded references,
// local tools talk shm).
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "ohpx/scenario/heatsim.hpp"

namespace ohpx::bench {
namespace {

struct HeatWorld {
  HeatWorld() {
    const netsim::LanId lab = world.add_lan("lab");
    const netsim::LanId remote = world.add_lan("remote");
    world.topology().set_campus(lab, 0);
    world.topology().set_campus(remote, 1);
    world.topology().set_lan_link(lab, netsim::atm_155());
    world.topology().set_default_wan_link(netsim::wan_t3());

    bigiron = world.add_machine("bigiron", lab);
    ws = world.add_machine("ws", lab);
    wan_box = world.add_machine("wan-box", remote);

    sim_ctx = &world.create_context(bigiron);
    local_ctx = &world.create_context(bigiron);
    lan_ctx = &world.create_context(ws);
    wan_ctx = &world.create_context(wan_box);

    auto servant = std::make_shared<scenario::HeatSimServant>();
    servant->init(128, 128, 10.0);
    servant->inject(64, 64, 900.0);
    ref = orb::RefBuilder(*sim_ctx, servant).build();
  }

  orb::Context& context_for(int placement) {
    switch (placement) {
      case 0: return *local_ctx;
      case 1: return *lan_ctx;
      default: return *wan_ctx;
    }
  }

  static const char* placement_name(int placement) {
    switch (placement) {
      case 0: return "same-machine";
      case 1: return "same-lan";
      default: return "wan";
    }
  }

  runtime::World world;
  netsim::MachineId bigiron{}, ws{}, wan_box{};
  orb::Context* sim_ctx = nullptr;
  orb::Context* local_ctx = nullptr;
  orb::Context* lan_ctx = nullptr;
  orb::Context* wan_ctx = nullptr;
  orb::ObjectRef ref;
};

HeatWorld& heat_world() {
  static HeatWorld world;
  return world;
}

void Heat_Step(benchmark::State& state) {
  auto& world = heat_world();
  const int placement = static_cast<int>(state.range(0));
  scenario::HeatSimPointer sim(world.context_for(placement), world.ref);
  state.SetLabel(std::string(HeatWorld::placement_name(placement)) + " " +
                 sim->probe_protocol());

  for (auto _ : state) {
    CostLedger ledger;
    double residual =
        sim->call_with_cost<double>(&ledger, scenario::HeatSimServant::kStep,
                                    std::uint32_t{1});
    benchmark::DoNotOptimize(residual);
    state.SetIterationTime(ledger.total_seconds());
  }
}

void Heat_FetchMap(benchmark::State& state) {
  auto& world = heat_world();
  const int placement = static_cast<int>(state.range(0));
  const auto stride = static_cast<std::uint32_t>(state.range(1));
  scenario::HeatSimPointer sim(world.context_for(placement), world.ref);
  state.SetLabel(std::string(HeatWorld::placement_name(placement)) + " " +
                 sim->probe_protocol());

  double total_seconds = 0.0;
  std::size_t map_cells = 0;
  for (auto _ : state) {
    CostLedger ledger;
    auto map = sim->fetch_map_with_cost(ledger, stride);
    map_cells = map.size();
    benchmark::DoNotOptimize(map);
    state.SetIterationTime(ledger.total_seconds());
    total_seconds += ledger.total_seconds();
  }
  state.counters["cells"] = static_cast<double>(map_cells);
  state.counters["maps_per_sec"] =
      static_cast<double>(state.iterations()) / total_seconds;
}

BENCHMARK(Heat_Step)->Arg(0)->Arg(1)->Arg(2)->UseManualTime()->Iterations(8);
BENCHMARK(Heat_FetchMap)
    ->ArgsProduct({{0, 1, 2}, {1, 4, 16}})
    ->UseManualTime()
    ->Iterations(8);

}  // namespace
}  // namespace ohpx::bench

int main(int argc, char** argv) { return ohpx::bench::bench_main(argc, argv); }
