// FIG4-MIG: the Figure 4 experiment end-to-end — the server object
// pseudo-migrates M1 → M2 → M3 → M0 while a client on M0 keeps issuing
// echo requests.  One benchmark per stage; the label embeds the protocol
// the ORB auto-selected at that stage, so the output shows the adaptivity
// sequence the paper narrates:
//
//   stage 1 (M1): glue[quota,authentication]->nexus-tcp
//   stage 3 (M2): glue[quota]->nexus-tcp
//   stage 5 (M3): nexus-tcp
//   stage 7 (M0): shm
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "ohpx/scenario/figure4.hpp"

namespace ohpx::bench {
namespace {

scenario::Figure4Scenario& fig4() {
  static scenario::Figure4Scenario scenario(netsim::atm_155(),
                                            netsim::wan_t3());
  return scenario;
}

void run_stage(benchmark::State& state, netsim::MachineId machine) {
  auto& scenario = fig4();
  if (scenario.server_machine() != machine) {
    scenario.migrate_to(machine);
  }
  auto gp = scenario.client_pointer();
  state.SetLabel(gp->probe_protocol());
  run_echo_series(state, gp);
}

void Fig4_Stage1_M1(benchmark::State& state) { run_stage(state, fig4().m1()); }
void Fig4_Stage3_M2(benchmark::State& state) { run_stage(state, fig4().m2()); }
void Fig4_Stage5_M3(benchmark::State& state) { run_stage(state, fig4().m3()); }
void Fig4_Stage7_M0(benchmark::State& state) { run_stage(state, fig4().m0()); }

void configure(benchmark::internal::Benchmark* bench) {
  for (const std::int64_t n : figure5_sizes()) bench->Arg(n);
  bench->UseManualTime()->Iterations(8);
}

// Registration order matters: stages must run in the paper's migration
// order (google-benchmark executes in registration order).
BENCHMARK(Fig4_Stage1_M1)->Apply(configure);
BENCHMARK(Fig4_Stage3_M2)->Apply(configure);
BENCHMARK(Fig4_Stage5_M3)->Apply(configure);
BENCHMARK(Fig4_Stage7_M0)->Apply(configure);

}  // namespace
}  // namespace ohpx::bench

int main(int argc, char** argv) { return ohpx::bench::bench_main(argc, argv); }
