// ABL-OVH: capability overhead in the worst case — over shared memory,
// where no network time hides the capability processing (the paper's §5
// argues the overhead is "small" because network time dominates; this
// bench quantifies the raw overhead that claim sweeps under the link).
//
// Sweeps chain length k = 0..4 (audit, checksum, authentication,
// encryption stacked in that order) across payload sizes.  Times here are
// real CPU time only.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "ohpx/capability/builtin/audit.hpp"
#include "ohpx/capability/builtin/checksum.hpp"
#include "ohpx/capability/builtin/encryption.hpp"

namespace ohpx::bench {
namespace {

struct OverheadWorld {
  OverheadWorld() {
    const netsim::LanId lan = world.add_lan("lan");
    machine = world.add_machine("M0", lan);
    client_ctx = &world.create_context(machine);
    server_ctx = &world.create_context(machine);
  }

  scenario::EchoPointer pointer_with_chain_length(int k) {
    const auto key = crypto::Key128::from_seed(7);
    std::vector<cap::CapabilityPtr> chain;
    if (k >= 1) chain.push_back(std::make_shared<cap::AuditCapability>());
    if (k >= 2) chain.push_back(std::make_shared<cap::ChecksumCapability>());
    if (k >= 3) {
      chain.push_back(std::make_shared<cap::AuthenticationCapability>(
          key, "bench", cap::Scope::always));
    }
    if (k >= 4) chain.push_back(std::make_shared<cap::EncryptionCapability>(key));

    orb::RefBuilder builder(*server_ctx,
                            std::make_shared<scenario::EchoServant>());
    if (k == 0) {
      builder.shm();
    } else {
      builder.glue(std::move(chain), "shm");
    }
    return scenario::EchoPointer(*client_ctx, builder.build());
  }

  runtime::World world;
  netsim::MachineId machine{};
  orb::Context* client_ctx = nullptr;
  orb::Context* server_ctx = nullptr;
};

OverheadWorld& overhead_world() {
  static OverheadWorld world;
  return world;
}

void CapabilityOverhead(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  auto gp = overhead_world().pointer_with_chain_length(k);
  state.SetLabel(gp->probe_protocol());

  std::vector<std::int32_t> values(n, 7);
  for (auto _ : state) {
    auto reply = gp->echo(values);
    benchmark::DoNotOptimize(reply);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8 *
                          static_cast<std::int64_t>(n));
  state.counters["chain_len"] = k;
}

BENCHMARK(CapabilityOverhead)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {16, 1024, 65536, 1 << 20}});

}  // namespace
}  // namespace ohpx::bench

int main(int argc, char** argv) { return ohpx::bench::bench_main(argc, argv); }
