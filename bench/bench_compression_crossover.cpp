// ABL-XOVER: where does the compression capability pay off?
//
// The paper frames capabilities as per-reference QoS trade-offs (§1).
// Compression is the capability with a real trade-off: it burns CPU to
// save wire time, so it wins on slow links and loses on fast ones.  This
// bench sweeps link speed × payload compressibility for plain nexus vs
// glue[compression(lz77)] and reports effective Mbps — the crossover is
// visible as the point where the glue series overtakes the plain one.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "ohpx/capability/builtin/compression.hpp"

namespace ohpx::bench {
namespace {

struct CrossoverWorld {
  CrossoverWorld(netsim::LinkSpec link) {
    const netsim::LanId lan = world.add_lan("lan");
    world.topology().set_lan_link(lan, std::move(link));
    m_client = world.add_machine("M0", lan);
    m_server = world.add_machine("M1", lan);
    client_ctx = &world.create_context(m_client);
    server_ctx = &world.create_context(m_server);
  }

  scenario::EchoPointer plain() {
    auto ref = orb::RefBuilder(*server_ctx,
                               std::make_shared<scenario::EchoServant>())
                   .nexus()
                   .build();
    return scenario::EchoPointer(*client_ctx, ref);
  }

  scenario::EchoPointer compressed() {
    auto ref = orb::RefBuilder(*server_ctx,
                               std::make_shared<scenario::EchoServant>())
                   .glue({std::make_shared<cap::CompressionCapability>(
                             compress::CodecId::lz)},
                         "nexus-tcp")
                   .build();
    return scenario::EchoPointer(*client_ctx, ref);
  }

  runtime::World world;
  netsim::MachineId m_client{}, m_server{};
  orb::Context* client_ctx = nullptr;
  orb::Context* server_ctx = nullptr;
};

netsim::LinkSpec link_for(int id) {
  switch (id) {
    case 0: return netsim::wan_t3();            // 45 Mbps
    case 1: return netsim::ethernet_10();       // 10 Mbps
    case 2: return netsim::fast_ethernet_100(); // 100 Mbps
    default: return netsim::LinkSpec{"gige", 1e9, std::chrono::microseconds(50)};
  }
}

const char* link_name(int id) {
  switch (id) {
    case 0: return "t3-45";
    case 1: return "eth-10";
    case 2: return "eth-100";
    default: return "gige-1000";
  }
}

/// Highly compressible payload: long runs of slowly-varying values.
std::vector<std::int32_t> compressible_values(std::size_t n) {
  std::vector<std::int32_t> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = static_cast<std::int32_t>(i / 512);
  }
  return values;
}

void run_crossover(benchmark::State& state, bool with_compression) {
  const int link_id = static_cast<int>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));

  CrossoverWorld world(link_for(link_id));
  auto gp = with_compression ? world.compressed() : world.plain();
  const auto values = compressible_values(n);

  double total_seconds = 0.0;
  for (auto _ : state) {
    CostLedger ledger;
    auto reply = gp->echo_with_cost(ledger, values);
    benchmark::DoNotOptimize(reply);
    state.SetIterationTime(ledger.total_seconds());
    total_seconds += ledger.total_seconds();
  }
  const double bytes = 2.0 * 4.0 * static_cast<double>(n) *
                       static_cast<double>(state.iterations());
  state.counters["Mbps_effective"] = bytes * 8.0 / (total_seconds * 1e6);
  state.SetLabel(link_name(link_id));
}

void Xover_Plain(benchmark::State& state) { run_crossover(state, false); }
void Xover_Compressed(benchmark::State& state) { run_crossover(state, true); }

void configure(benchmark::internal::Benchmark* bench) {
  bench->ArgsProduct({{0, 1, 2, 3}, {65536, 1 << 20}})
      ->UseManualTime()
      ->Iterations(4);
}

BENCHMARK(Xover_Plain)->Apply(configure);
BENCHMARK(Xover_Compressed)->Apply(configure);

}  // namespace
}  // namespace ohpx::bench

int main(int argc, char** argv) { return ohpx::bench::bench_main(argc, argv); }
