// Shared scaffolding for the benchmark suite.
//
// The Figure 5 benches reproduce the paper's bandwidth-vs-size experiment:
// a client exchanges arrays of int32 with a server over four protocol
// configurations, sizes 1 … 1M elements.  Time per call is the hybrid cost
// model (real CPU time for marshalling/capabilities + modeled wire time for
// the simulated link — DESIGN.md §7); google-benchmark consumes it through
// SetIterationTime/UseManualTime, so the reported "time" and bandwidth are
// the modeled-network numbers, deterministic across runs.
//
// Bandwidth convention: bytes counted in both directions (request payload +
// reply payload), matching a saturation plateau at the link rate.
#pragma once

#include <benchmark/benchmark.h>

#include <vector>

#include "ohpx/scenario/figure5.hpp"

namespace ohpx::bench {

using scenario::Figure5World;

/// Array sizes (int32 elements): 1 … 1M in powers of 4, as in Figure 5's
/// log-log sweep.
inline std::vector<std::int64_t> figure5_sizes() {
  std::vector<std::int64_t> sizes;
  for (std::int64_t n = 1; n <= (1 << 20); n *= 4) sizes.push_back(n);
  return sizes;
}

/// Runs the echo exchange for `state` with the hybrid cost model feeding
/// google-benchmark's manual time, and reports Mbps (both directions).
inline void run_echo_series(benchmark::State& state,
                            scenario::EchoPointer& gp) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int32_t> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<std::int32_t>(i);

  double total_seconds = 0.0;
  for (auto _ : state) {
    CostLedger ledger;
    auto reply = gp->echo_with_cost(ledger, values);
    benchmark::DoNotOptimize(reply);
    const double seconds = ledger.total_seconds();
    state.SetIterationTime(seconds);
    total_seconds += seconds;
  }

  const double bytes_per_iter = 2.0 * 4.0 * static_cast<double>(n);
  state.SetBytesProcessed(static_cast<std::int64_t>(
      bytes_per_iter * static_cast<double>(state.iterations())));
  const double mbps = bytes_per_iter * 8.0 *
                      static_cast<double>(state.iterations()) /
                      (total_seconds * 1e6);
  state.counters["Mbps"] = mbps;
  state.counters["bytes"] = bytes_per_iter / 2.0;  // one-way payload size
}

}  // namespace ohpx::bench
