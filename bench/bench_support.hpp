// Shared scaffolding for the benchmark suite.
//
// The Figure 5 benches reproduce the paper's bandwidth-vs-size experiment:
// a client exchanges arrays of int32 with a server over four protocol
// configurations, sizes 1 … 1M elements.  Time per call is the hybrid cost
// model (real CPU time for marshalling/capabilities + modeled wire time for
// the simulated link — DESIGN.md §7); google-benchmark consumes it through
// SetIterationTime/UseManualTime, so the reported "time" and bandwidth are
// the modeled-network numbers, deterministic across runs.
//
// Bandwidth convention: bytes counted in both directions (request payload +
// reply payload), matching a saturation plateau at the link rate.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "ohpx/scenario/figure5.hpp"

namespace ohpx::bench {

using scenario::Figure5World;

/// Array sizes (int32 elements): 1 … 1M in powers of 4, as in Figure 5's
/// log-log sweep.
inline std::vector<std::int64_t> figure5_sizes() {
  std::vector<std::int64_t> sizes;
  for (std::int64_t n = 1; n <= (1 << 20); n *= 4) sizes.push_back(n);
  return sizes;
}

/// Runs the echo exchange for `state` with the hybrid cost model feeding
/// google-benchmark's manual time, and reports Mbps (both directions).
inline void run_echo_series(benchmark::State& state,
                            scenario::EchoPointer& gp) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int32_t> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<std::int32_t>(i);

  double total_seconds = 0.0;
  for (auto _ : state) {
    CostLedger ledger;
    auto reply = gp->echo_with_cost(ledger, values);
    benchmark::DoNotOptimize(reply);
    const double seconds = ledger.total_seconds();
    state.SetIterationTime(seconds);
    total_seconds += seconds;
  }

  const double bytes_per_iter = 2.0 * 4.0 * static_cast<double>(n);
  state.SetBytesProcessed(static_cast<std::int64_t>(
      bytes_per_iter * static_cast<double>(state.iterations())));
  const double mbps = bytes_per_iter * 8.0 *
                      static_cast<double>(state.iterations()) /
                      (total_seconds * 1e6);
  state.counters["Mbps"] = mbps;
  state.counters["bytes"] = bytes_per_iter / 2.0;  // one-way payload size
}

// ---------------------------------------------------------------------------
// JSON emission.  Every bench binary accepts `--json <path>` in addition to
// the usual --benchmark_* flags; google-benchmark mains route it through
// bench_main() below, hand-rolled mains (bench_invoke_fastpath) write their
// records with write_json_records().  Both produce a top-level
// {"benchmarks": [...]} array so downstream tooling reads either shape.
// ---------------------------------------------------------------------------

/// Strips a `--json <path>` (or `--json=<path>`) flag from argv.
/// Returns the path, or "" when the flag is absent.
inline std::string consume_json_flag(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

/// One result row for hand-rolled bench mains: a name plus flat numeric
/// metrics (times in ns, rates in calls/s — whatever the bench reports).
struct JsonRecord {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;
};

/// Writes `records` to `path` as {"benchmarks": [{"name": ..., <metric>:
/// <value>, ...}, ...]}.  Non-finite values are emitted as 0 (JSON has no
/// inf/nan).  Returns false when the file cannot be opened.
inline bool write_json_records(const std::string& path,
                               const std::vector<JsonRecord>& records) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out << "    {\n      \"name\": \"" << records[i].name << "\"";
    for (const auto& [key, value] : records[i].metrics) {
      char formatted[64];
      std::snprintf(formatted, sizeof(formatted), "%.6g",
                    std::isfinite(value) ? value : 0.0);
      out << ",\n      \"" << key << "\": " << formatted;
    }
    out << "\n    }" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

/// Shared main() for the google-benchmark benches: `--json <path>` tees the
/// run into a JSON file while the console report stays on stdout.  The flag
/// is translated into google-benchmark's own --benchmark_out pair rather
/// than a hand-constructed file reporter: passing a reporter without
/// --benchmark_out is rejected by the library (1.7 errors out), while the
/// flag form works across versions.
inline int bench_main(int argc, char** argv) {
  const std::string json_path = consume_json_flag(argc, argv);
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string format_flag;
  if (!json_path.empty()) {
    out_flag = "--benchmark_out=" + json_path;
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  args.push_back(nullptr);
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ohpx::bench
