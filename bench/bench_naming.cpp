// ABL-NAME: naming-service costs — bind/resolve/list throughput over shm
// and over the simulated LAN, plus the end-to-end cost of "resolve a name,
// bind a pointer, make the first call" (the client bootstrap path).
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "ohpx/naming/name_client.hpp"
#include "ohpx/naming/name_service.hpp"

namespace ohpx::bench {
namespace {

struct NamingWorld {
  NamingWorld() {
    const netsim::LanId lan = world.add_lan("lan");
    m_server = world.add_machine("server", lan);
    m_client = world.add_machine("client", lan);
    server_ctx = &world.create_context(m_server);
    client_ctx = &world.create_context(m_client);
    local_client_ctx = &world.create_context(m_server);
    host = std::make_unique<naming::NameServiceHost>(*server_ctx);

    echo_ref = orb::RefBuilder(*server_ctx,
                               std::make_shared<scenario::EchoServant>())
                   .build();
    // Pre-populate the directory.
    for (int i = 0; i < 1000; ++i) {
      host->service().bind("svc/echo-" + std::to_string(i), echo_ref);
    }
  }

  orb::Context& client_for(bool local) {
    return local ? *local_client_ctx : *client_ctx;
  }

  runtime::World world;
  netsim::MachineId m_server{}, m_client{};
  orb::Context* server_ctx = nullptr;
  orb::Context* client_ctx = nullptr;
  orb::Context* local_client_ctx = nullptr;
  std::unique_ptr<naming::NameServiceHost> host;
  orb::ObjectRef echo_ref;
};

NamingWorld& naming_world() {
  static NamingWorld world;
  return world;
}

void Name_Resolve(benchmark::State& state) {
  auto& world = naming_world();
  const bool local = state.range(0) == 0;
  naming::NameServiceStub names(world.client_for(local), world.host->ref());
  state.SetLabel(local ? "shm" : "nexus-tcp");

  std::size_t i = 0;
  for (auto _ : state) {
    auto ref = names.resolve("svc/echo-" + std::to_string(i++ % 1000));
    benchmark::DoNotOptimize(ref);
  }
}

void Name_List(benchmark::State& state) {
  auto& world = naming_world();
  naming::NameServiceStub names(world.client_for(true), world.host->ref());
  for (auto _ : state) {
    auto listing = names.list("svc/");
    benchmark::DoNotOptimize(listing);
  }
  state.counters["entries"] = 1000;
}

void Name_BindUnbind(benchmark::State& state) {
  auto& world = naming_world();
  naming::NameServiceStub names(world.client_for(true), world.host->ref());
  for (auto _ : state) {
    names.bind("bench/tmp", world.echo_ref, /*rebind=*/true);
    names.unbind("bench/tmp");
  }
}

void Name_BootstrapFirstCall(benchmark::State& state) {
  auto& world = naming_world();
  for (auto _ : state) {
    naming::NameServiceStub names(world.client_for(true), world.host->ref());
    auto ref = names.resolve("svc/echo-0");
    scenario::EchoPointer gp(world.client_for(true), ref);
    benchmark::DoNotOptimize(gp->ping());
  }
}

// The NameClient cache pair: the same lookup through the caching client,
// warm and deliberately cold.  check_bench_json.py's `naming` gate holds
// the fresh/cached ratio above a floor — a cache that stops caching (or a
// hot map probe that grows a remote call) collapses the ratio and trips.
void Name_ClientResolveCached(benchmark::State& state) {
  auto& world = naming_world();
  naming::NameClient names(world.client_for(true), world.host->ref());
  benchmark::DoNotOptimize(names.resolve("svc/echo-0"));  // warm the entry
  for (auto _ : state) {
    auto ref = names.resolve("svc/echo-0");
    benchmark::DoNotOptimize(ref);
  }
}

void Name_ClientResolveFresh(benchmark::State& state) {
  auto& world = naming_world();
  naming::NameClient names(world.client_for(true), world.host->ref());
  for (auto _ : state) {
    auto ref = names.resolve_fresh("svc/echo-0");
    benchmark::DoNotOptimize(ref);
  }
}

// World::find_context_of at two world sizes.  The context index makes the
// probe independent of context count; the 512/8 time ratio (gated by
// check_bench_json.py) is the O(1)-ish assertion — a return to linear
// scanning shows up as a ~64x ratio, far past the gate.
void Name_FindContext(benchmark::State& state) {
  const auto contexts = static_cast<std::size_t>(state.range(0));
  runtime::World world;
  const netsim::LanId lan = world.add_lan("lan");
  const netsim::MachineId machine = world.add_machine("host", lan);
  orb::Context* last = nullptr;
  for (std::size_t i = 0; i < contexts; ++i) {
    last = &world.create_context(machine);
  }
  const auto ref =
      orb::RefBuilder(*last, std::make_shared<scenario::EchoServant>())
          .build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.find_context_of(ref.object_id()));
  }
  state.counters["contexts"] = static_cast<double>(contexts);
}

BENCHMARK(Name_Resolve)->Arg(0)->Arg(1);
BENCHMARK(Name_List);
BENCHMARK(Name_BindUnbind);
BENCHMARK(Name_BootstrapFirstCall);
BENCHMARK(Name_ClientResolveCached);
BENCHMARK(Name_ClientResolveFresh);
BENCHMARK(Name_FindContext)->Arg(8)->Arg(512);

}  // namespace
}  // namespace ohpx::bench

int main(int argc, char** argv) { return ohpx::bench::bench_main(argc, argv); }
