// ABL-LB: load balancing + capability adaptivity in tandem (paper §4.3 and
// the conclusion's claim that the combination yields "extremely flexible
// high-performance applications").
//
// Setup: a client on M0 talks to a server object that starts on an
// overloaded remote machine M1 (cross-campus, so the authenticated glue
// protocol applies).  The high-water-mark balancer migrates the object to
// the least-loaded machine — M0 itself — after which the same GP's calls
// ride shared memory with no capability processing.  The bench reports the
// per-call cost before and after the balancer acts.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "ohpx/runtime/balancer.hpp"

namespace ohpx::bench {
namespace {

struct BalanceWorld {
  BalanceWorld() : balancer(world, {}) {
    const netsim::LanId lan_home = world.add_lan("home");
    const netsim::LanId lan_remote = world.add_lan("remote");
    world.topology().set_campus(lan_home, 0);
    world.topology().set_campus(lan_remote, 1);
    world.topology().set_lan_link(lan_home, netsim::atm_155());
    world.topology().set_lan_link(lan_remote, netsim::atm_155());

    m_client = world.add_machine("M0", lan_home);
    m_busy = world.add_machine("M1", lan_remote);
    client_ctx = &world.create_context(m_client);
    busy_ctx = &world.create_context(m_busy);

    auto auth = std::make_shared<cap::AuthenticationCapability>(
        crypto::Key128::from_seed(5), "lb-client", cap::Scope::cross_campus);
    ref = orb::RefBuilder(*busy_ctx, std::make_shared<scenario::EchoServant>())
              .glue({auth}, "nexus-tcp")
              .shm()
              .nexus()
              .build();
    balancer.track(ref.object_id(), 0.6);

    // M1 is overloaded, M0 idle.
    world.topology().set_load(m_busy, 0.95);
    world.topology().set_load(m_client, 0.10);
  }

  runtime::World world;
  runtime::LoadBalancer balancer;
  netsim::MachineId m_client{}, m_busy{};
  orb::Context* client_ctx = nullptr;
  orb::Context* busy_ctx = nullptr;
  orb::ObjectRef ref;
};

BalanceWorld& balance_world() {
  static BalanceWorld world;
  return world;
}

void LB_BeforeRebalance(benchmark::State& state) {
  auto& world = balance_world();
  scenario::EchoPointer gp(*world.client_ctx, world.ref);
  state.SetLabel(gp->probe_protocol());
  run_echo_series(state, gp);
}

void LB_Rebalance(benchmark::State& state) {
  auto& world = balance_world();
  std::size_t migrations = 0;
  for (auto _ : state) {
    migrations += world.balancer.rebalance_once().size();
    state.SetIterationTime(1e-6);  // placeholder; the point is the effect
  }
  state.counters["migrations"] = static_cast<double>(migrations);
}

void LB_AfterRebalance(benchmark::State& state) {
  auto& world = balance_world();
  scenario::EchoPointer gp(*world.client_ctx, world.ref);
  state.SetLabel(gp->probe_protocol());
  run_echo_series(state, gp);
}

void configure(benchmark::internal::Benchmark* bench) {
  bench->Arg(4096)->Arg(65536)->Arg(1 << 20);
  bench->UseManualTime()->Iterations(8);
}

BENCHMARK(LB_BeforeRebalance)->Apply(configure);
BENCHMARK(LB_Rebalance)->UseManualTime()->Iterations(1);
BENCHMARK(LB_AfterRebalance)->Apply(configure);

}  // namespace
}  // namespace ohpx::bench

int main(int argc, char** argv) { return ohpx::bench::bench_main(argc, argv); }
