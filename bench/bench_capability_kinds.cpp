// ABL-CAP: per-capability byte-processing cost (MB/s) for every built-in
// payload-transforming capability, measured as process()+unprocess() round
// trips on raw buffers — the microscopic view of what the glue protocol
// charges per call.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include "ohpx/capability/builtin/authentication.hpp"
#include "ohpx/capability/builtin/checksum.hpp"
#include "ohpx/capability/builtin/compression.hpp"
#include "ohpx/capability/builtin/encryption.hpp"
#include "ohpx/common/rng.hpp"

namespace ohpx::bench {
namespace {

cap::CallContext make_call() {
  cap::CallContext call;
  call.request_id = 99;
  call.object_id = 1;
  call.method_id = 2;
  return call;
}

Bytes random_payload(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

Bytes compressible_payload(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>((i / 64) % 7);
  }
  return out;
}

void run_roundtrip(benchmark::State& state, cap::Capability& capability,
                   const Bytes& payload) {
  const auto call = make_call();
  for (auto _ : state) {
    wire::Buffer buf{Bytes(payload)};
    capability.process(buf, call);
    capability.unprocess(buf, call);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}

void Cap_Encryption(benchmark::State& state) {
  cap::EncryptionCapability capability(crypto::Key128::from_seed(1));
  run_roundtrip(state, capability,
                random_payload(static_cast<std::size_t>(state.range(0)), 11));
}

void Cap_Authentication(benchmark::State& state) {
  cap::AuthenticationCapability capability(crypto::Key128::from_seed(2),
                                           "bench", cap::Scope::always);
  run_roundtrip(state, capability,
                random_payload(static_cast<std::size_t>(state.range(0)), 22));
}

void Cap_Checksum(benchmark::State& state) {
  cap::ChecksumCapability capability;
  run_roundtrip(state, capability,
                random_payload(static_cast<std::size_t>(state.range(0)), 33));
}

void Cap_CompressRle(benchmark::State& state) {
  cap::CompressionCapability capability(compress::CodecId::rle);
  run_roundtrip(state, capability,
                compressible_payload(static_cast<std::size_t>(state.range(0))));
}

void Cap_CompressLz(benchmark::State& state) {
  cap::CompressionCapability capability(compress::CodecId::lz);
  run_roundtrip(state, capability,
                compressible_payload(static_cast<std::size_t>(state.range(0))));
}

void Cap_CompressLzRandom(benchmark::State& state) {
  cap::CompressionCapability capability(compress::CodecId::lz);
  run_roundtrip(state, capability,
                random_payload(static_cast<std::size_t>(state.range(0)), 44));
}

BENCHMARK(Cap_Encryption)->Range(1 << 10, 1 << 20);
BENCHMARK(Cap_Authentication)->Range(1 << 10, 1 << 20);
BENCHMARK(Cap_Checksum)->Range(1 << 10, 1 << 20);
BENCHMARK(Cap_CompressRle)->Range(1 << 10, 1 << 20);
BENCHMARK(Cap_CompressLz)->Range(1 << 10, 1 << 20);
BENCHMARK(Cap_CompressLzRandom)->Range(1 << 10, 1 << 20);

}  // namespace
}  // namespace ohpx::bench

int main(int argc, char** argv) { return ohpx::bench::bench_main(argc, argv); }
