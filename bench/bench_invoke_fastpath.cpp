// Fast-path invocation microbenchmark: what the epoch-keyed selection
// cache buys on the cheapest real call the runtime can make (same-machine
// shm ping through a three-entry protocol table, the Figure 3 shape).
//
// Two arms over the identical world:
//   cache off — the paper's literal rule: every call re-resolves the
//               location and re-scans the table (the seed behaviour);
//   cache on  — the memoized selection revalidated against the location
//               epoch and pool generation (the default).
// Reported per arm: sustained calls/sec plus per-call p50/p99 latency
// sampled with a monotonic clock around each invocation.
//
// Hand-rolled main (not google-benchmark): the per-call percentiles and
// the paired on/off speedup need one fixture shared across both arms.
// Flags: --smoke (short run for CI), --json <path> (defaults to
// BENCH_fastpath.json in the working directory).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "ohpx/capability/builtin/authentication.hpp"
#include "ohpx/metrics/metrics.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/echo.hpp"

namespace ohpx::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct Arm {
  std::string name;
  double calls_per_sec = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  std::uint64_t iterations = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

double percentile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1));
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

Arm run_arm(scenario::EchoPointer& gp, bool cache_on, std::size_t warmup,
            std::size_t iterations) {
  gp->set_selection_cache(cache_on);
  for (std::size_t i = 0; i < warmup; ++i) gp->ping();

  auto& registry = metrics::MetricsRegistry::global();
  const std::uint64_t hits0 = registry.counter("rmi.select.cache_hit");
  const std::uint64_t misses0 = registry.counter("rmi.select.cache_miss");

  // Throughput loop: no per-call clocks, so calls/sec measures the
  // pipeline alone rather than the sampling overhead.
  const auto series_start = Clock::now();
  for (std::size_t i = 0; i < iterations; ++i) gp->ping();
  const double series_seconds =
      std::chrono::duration<double>(Clock::now() - series_start).count();

  // Separate sampled loop for the percentiles.
  std::vector<double> samples;
  samples.reserve(iterations);
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto call_start = Clock::now();
    gp->ping();
    samples.push_back(std::chrono::duration<double, std::nano>(
                          Clock::now() - call_start)
                          .count());
  }

  Arm arm;
  arm.name =
      cache_on ? "invoke_fastpath/cache_on" : "invoke_fastpath/cache_off";
  arm.iterations = iterations;
  arm.calls_per_sec =
      series_seconds > 0.0 ? static_cast<double>(iterations) / series_seconds
                           : 0.0;
  arm.p50_ns = percentile(samples, 0.50);
  arm.p99_ns = percentile(samples, 0.99);
  arm.cache_hits = registry.counter("rmi.select.cache_hit") - hits0;
  arm.cache_misses = registry.counter("rmi.select.cache_miss") - misses0;
  return arm;
}

int run(int argc, char** argv) {
  std::string json_path = consume_json_flag(argc, argv);
  if (json_path.empty()) json_path = "BENCH_fastpath.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const std::size_t warmup = smoke ? 200 : 5000;
  const std::size_t iterations = smoke ? 2000 : 200000;

  // Figure 3 shape: authenticated glue preferred (not applicable here —
  // client and server share the machine), shm the winner, nexus fallback.
  // The uncached arm pays the glue applicability check on every scan.
  runtime::World world;
  const auto lan = world.add_lan("lan-1");
  const auto machine = world.add_machine("bench-box", lan);
  orb::Context& server_ctx = world.create_context(machine);
  orb::Context& client_ctx = world.create_context(machine);

  auto auth = std::make_shared<cap::AuthenticationCapability>(
      crypto::Key128::from_seed(0xbe7c), "fastpath-bench",
      cap::Scope::cross_lan);
  auto ref =
      orb::RefBuilder(server_ctx, std::make_shared<scenario::EchoServant>())
          .glue({auth}, "nexus-tcp")
          .shm()
          .nexus()
          .build();
  scenario::EchoPointer gp(client_ctx, ref);

  Arm off = run_arm(gp, /*cache_on=*/false, warmup, iterations);
  Arm on = run_arm(gp, /*cache_on=*/true, warmup, iterations);
  const double speedup =
      off.calls_per_sec > 0.0 ? on.calls_per_sec / off.calls_per_sec : 0.0;

  std::printf(
      "invoke_fastpath: shm ping, table=[glue(auth), shm, nexus-tcp]%s\n",
      smoke ? " (smoke)" : "");
  for (const Arm* arm : {&off, &on}) {
    std::printf("  %-28s %12.0f calls/s   p50 %8.0f ns   p99 %8.0f ns"
                "   (hits %llu, misses %llu)\n",
                arm->name.c_str(), arm->calls_per_sec, arm->p50_ns, arm->p99_ns,
                static_cast<unsigned long long>(arm->cache_hits),
                static_cast<unsigned long long>(arm->cache_misses));
  }
  std::printf("  speedup (cached / uncached): %.2fx\n", speedup);

  std::vector<JsonRecord> records;
  for (const Arm* arm : {&off, &on}) {
    records.push_back(JsonRecord{
        arm->name,
        {{"calls_per_sec", arm->calls_per_sec},
         {"p50_ns", arm->p50_ns},
         {"p99_ns", arm->p99_ns},
         {"iterations", static_cast<double>(arm->iterations)},
         {"cache_hits", static_cast<double>(arm->cache_hits)},
         {"cache_misses", static_cast<double>(arm->cache_misses)}}});
  }
  records.push_back(JsonRecord{"invoke_fastpath/speedup",
                               {{"cached_over_uncached", speedup}}});
  if (!write_json_records(json_path, records)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("  wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ohpx::bench

int main(int argc, char** argv) { return ohpx::bench::run(argc, argv); }
