// ABL-SEL: cost of automatic run-time protocol selection (paper §3.2:
// selection happens "for each individual remote request", so it must be
// cheap).  Sweeps the OR protocol-table size and measures (a) pure
// selection and (b) selection + location resolution via probe_protocol.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "ohpx/protocol/registry.hpp"
#include "ohpx/protocol/select.hpp"

namespace ohpx::bench {
namespace {

struct SelectionWorld {
  SelectionWorld() {
    const netsim::LanId lan = world.add_lan("lan");
    m_client = world.add_machine("M0", lan);
    m_server = world.add_machine("M1", lan);
    client_ctx = &world.create_context(m_client);
    server_ctx = &world.create_context(m_server);
  }

  /// OR table with `extra` leading glue entries that are never applicable
  /// (scope=never quota), forcing the selector to walk the table.
  orb::ObjectRef ref_with_table_size(int extra) {
    orb::RefBuilder builder(*server_ctx,
                            std::make_shared<scenario::EchoServant>());
    for (int i = 0; i < extra; ++i) {
      builder.glue({std::make_shared<cap::QuotaCapability>(
                       1ull << 30, cap::Scope::never)},
                   "nexus-tcp");
    }
    builder.nexus();
    return builder.build();
  }

  runtime::World world;
  netsim::MachineId m_client{}, m_server{};
  orb::Context* client_ctx = nullptr;
  orb::Context* server_ctx = nullptr;
};

SelectionWorld& selection_world() {
  static SelectionWorld world;
  return world;
}

void SelectionWalk(benchmark::State& state) {
  auto& world = selection_world();
  const int extra = static_cast<int>(state.range(0));
  const auto ref = world.ref_with_table_size(extra);
  const auto protocols =
      proto::ProtocolRegistry::instance().instantiate_table(ref.table());

  proto::CallTarget target;
  target.address = *world.world.location().resolve(ref.object_id());
  target.placement = netsim::Placement{world.m_client, target.address.machine,
                                       &world.world.topology()};

  for (auto _ : state) {
    proto::Protocol* selected =
        proto::select_protocol(protocols, world.client_ctx->pool(), target);
    benchmark::DoNotOptimize(selected);
  }
  state.counters["table_size"] = extra + 1;
}

void SelectionWithResolve(benchmark::State& state) {
  auto& world = selection_world();
  const int extra = static_cast<int>(state.range(0));
  const auto ref = world.ref_with_table_size(extra);
  scenario::EchoStub stub(*world.client_ctx, ref);

  for (auto _ : state) {
    auto name = stub.probe_protocol();
    benchmark::DoNotOptimize(name);
  }
  state.counters["table_size"] = extra + 1;
}

BENCHMARK(SelectionWalk)->Arg(0)->Arg(1)->Arg(3)->Arg(7)->Arg(15);
BENCHMARK(SelectionWithResolve)->Arg(0)->Arg(1)->Arg(3)->Arg(7)->Arg(15);

}  // namespace
}  // namespace ohpx::bench

int main(int argc, char** argv) { return ohpx::bench::bench_main(argc, argv); }
