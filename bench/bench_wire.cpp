// ABL-WIRE: marshalling throughput of the XDR-like wire layer — the floor
// under every protocol's real-time cost, and the substance behind the
// paper's "no extra data copying" design point (§3.2).
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

#include <map>
#include <string>

#include "ohpx/wire/message.hpp"
#include "ohpx/wire/serialize.hpp"

namespace ohpx::bench {
namespace {

void EncodeIntArray(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int32_t> values(n, 42);
  for (auto _ : state) {
    wire::Buffer buf = wire::encode_value(values);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 4 *
                          static_cast<std::int64_t>(n));
}

void DecodeIntArray(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int32_t> values(n, 42);
  const wire::Buffer buf = wire::encode_value(values);
  for (auto _ : state) {
    auto decoded = wire::decode_value<std::vector<std::int32_t>>(buf.view());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 4 *
                          static_cast<std::int64_t>(n));
}

void EncodeString(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string text(n, 'x');
  for (auto _ : state) {
    wire::Buffer buf = wire::encode_value(text);
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void RoundTripStringMap(benchmark::State& state) {
  std::map<std::string, std::string> params;
  for (int i = 0; i < 32; ++i) {
    params["key-" + std::to_string(i)] = "value-" + std::to_string(i * i);
  }
  for (auto _ : state) {
    wire::Buffer buf = wire::encode_value(params);
    auto decoded =
        wire::decode_value<std::map<std::string, std::string>>(buf.view());
    benchmark::DoNotOptimize(decoded);
  }
}

void FrameEncodeDecode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Bytes body(n, 0xab);
  wire::MessageHeader header;
  header.request_id = 123;
  header.object_id = 456;
  header.method_or_code = 7;
  for (auto _ : state) {
    wire::Buffer frame = wire::encode_frame(header, body);
    BytesView parsed_body;
    auto parsed = wire::decode_frame(frame.view(), parsed_body);
    benchmark::DoNotOptimize(parsed);
    benchmark::DoNotOptimize(parsed_body);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

BENCHMARK(EncodeIntArray)->Range(16, 1 << 20);
BENCHMARK(DecodeIntArray)->Range(16, 1 << 20);
BENCHMARK(EncodeString)->Range(64, 1 << 20);
BENCHMARK(RoundTripStringMap);
BENCHMARK(FrameEncodeDecode)->Range(64, 1 << 20);

}  // namespace
}  // namespace ohpx::bench

int main(int argc, char** argv) { return ohpx::bench::bench_main(argc, argv); }
