// Massive fan-in benchmark: aggregate calls/sec against a real loopback
// TCP server, blocking bearer vs. the epoll reactor, at matched
// concurrency.
//
// The blocking bearer admits exactly one call per connection — "blocking
// TCP at N concurrent calls" therefore means N caller threads, each
// parked on its own connection (the connection-per-peer, thread-per-call
// shape the reactor replaces).  Three arms over the identical world
// (tcp-only protocol table):
//   blocking_serial — one thread, one connection, one call in flight:
//                     the per-call roundtrip floor, for reference;
//   blocking        — N threads, each with its own stub and therefore its
//                     own blocking channel: N concurrent calls the
//                     thread-per-call way;
//   reactor         — one thread with N call_async futures in flight:
//                     frames coalesce into gathered sendmsg batches and
//                     replies demux by correlation id.
// The headline number is the reactor/blocking speedup at 1k+ concurrency.
//
// Hand-rolled main (not google-benchmark): the fan-in arms need a
// sliding window of futures / a thread fleet, not a per-iteration
// callable.  Flags: --smoke (short run for CI), --json <path> (defaults
// to BENCH_fanin.json in the working directory), --metrics-port N
// (serve the live introspection exposition on N while the bench runs —
// CI scrapes it mid-soak to validate the exporter under real load),
// --metrics-hold SEC (keep the process and exporter alive that long
// after the arms finish, so a scraper always has a window).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "ohpx/introspect/http_exporter.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/protocol/tcp_proto.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/echo.hpp"
#include "ohpx/transport/reactor.hpp"

namespace ohpx::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct Arm {
  std::string name;
  double calls_per_sec = 0.0;
  std::uint64_t calls = 0;
  std::uint64_t inflight = 0;
};

Arm run_blocking_serial(scenario::EchoStub& stub, std::size_t warmup,
                        std::size_t calls) {
  proto::TcpProtocol::set_blocking_fallback(true);
  for (std::size_t i = 0; i < warmup; ++i) stub.ping();

  const auto start = Clock::now();
  for (std::size_t i = 0; i < calls; ++i) stub.ping();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  proto::TcpProtocol::set_blocking_fallback(false);

  Arm arm;
  arm.name = "fanin/blocking_serial";
  arm.calls = calls;
  arm.inflight = 1;
  arm.calls_per_sec =
      seconds > 0.0 ? static_cast<double>(calls) / seconds : 0.0;
  return arm;
}

Arm run_blocking(orb::Context& client_ctx, const orb::ObjectRef& ref,
                 std::size_t threads, std::size_t calls) {
  proto::TcpProtocol::set_blocking_fallback(true);
  // One stub per caller thread: its own CallCore, its own TcpProtocol
  // instance, its own blocking channel.  The warmup ping doubles as the
  // connection establishment, serialized off the clock so the listener
  // backlog never sees a thousand simultaneous SYNs.
  std::vector<std::unique_ptr<scenario::EchoStub>> stubs;
  stubs.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    stubs.push_back(std::make_unique<scenario::EchoStub>(client_ctx, ref));
    stubs.back()->ping();
  }

  const std::size_t per_thread = calls / threads;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const auto start = Clock::now();
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&stubs, t, per_thread] {
      for (std::size_t i = 0; i < per_thread; ++i) stubs[t]->ping();
    });
  }
  for (auto& w : workers) w.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  proto::TcpProtocol::set_blocking_fallback(false);

  Arm arm;
  arm.name = "fanin/blocking";
  arm.calls = per_thread * threads;
  arm.inflight = threads;
  arm.calls_per_sec =
      seconds > 0.0 ? static_cast<double>(arm.calls) / seconds : 0.0;
  return arm;
}

Arm run_reactor(scenario::EchoStub& stub, std::size_t warmup,
                std::size_t calls, std::size_t inflight) {
  for (std::size_t i = 0; i < warmup; ++i) stub.ping();

  // Sliding window: keep `inflight` futures outstanding; replies come
  // back in submission order (one connection, FIFO server), so draining
  // the oldest future frees exactly one window slot.
  std::vector<ohpx::Future<std::uint64_t>> window;
  window.reserve(calls);
  std::size_t drained = 0;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < calls; ++i) {
    if (i - drained >= inflight) window[drained++].get();
    window.push_back(
        stub.call_async<std::uint64_t>(scenario::EchoServant::kPing));
  }
  while (drained < window.size()) window[drained++].get();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  Arm arm;
  arm.name = "fanin/reactor";
  arm.calls = calls;
  arm.inflight = inflight;
  arm.calls_per_sec =
      seconds > 0.0 ? static_cast<double>(calls) / seconds : 0.0;
  return arm;
}

int run(int argc, char** argv) {
  std::string json_path = consume_json_flag(argc, argv);
  if (json_path.empty()) json_path = "BENCH_fanin.json";
  bool smoke = false;
  std::uint16_t metrics_port = 0;
  bool serve_metrics = false;
  double metrics_hold_s = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--metrics-port" && i + 1 < argc) {
      // Port 0 is valid: the kernel picks, and the bench prints the
      // bound port for the scraper.
      metrics_port = static_cast<std::uint16_t>(
          std::strtoul(argv[++i], nullptr, 10));
      serve_metrics = true;
    } else if (arg == "--metrics-hold" && i + 1 < argc) {
      metrics_hold_s = std::strtod(argv[++i], nullptr);
    }
  }

  std::optional<introspect::IntrospectHttpServer> exporter;
  if (serve_metrics) {
    exporter.emplace(metrics_port);
    std::printf("fanin: metrics exporter on http://127.0.0.1:%u/metrics\n",
                static_cast<unsigned>(exporter->port()));
    std::fflush(stdout);
  }
  // The concurrent arms run >=1k calls in flight (the reactor window
  // defaults to 1024, so 1000 never trips backpressure); the blocking
  // arms are slower per call, so they run fewer total calls for
  // comparable wall time.
  const std::size_t inflight = smoke ? 256 : 1000;
  const std::size_t warmup = smoke ? 200 : 2000;
  const std::size_t blocking_calls = smoke ? 2048 : 20000;
  const std::size_t reactor_calls = smoke ? 20000 : 200000;

  runtime::World world;
  const auto lan = world.add_lan("lan");
  const auto m_client = world.add_machine("client", lan);
  const auto m_server = world.add_machine("server", lan);
  orb::Context& client_ctx = world.create_context(m_client);
  orb::Context& server_ctx = world.create_context(m_server);
  server_ctx.enable_tcp();

  auto ref =
      orb::RefBuilder(server_ctx, std::make_shared<scenario::EchoServant>())
          .tcp()
          .build();
  scenario::EchoStub stub(client_ctx, ref);

  Arm serial = run_blocking_serial(stub, warmup, blocking_calls);
  Arm blocking = run_blocking(client_ctx, ref, inflight, blocking_calls);
  Arm reactor = run_reactor(stub, warmup, reactor_calls, inflight);
  const double speedup = blocking.calls_per_sec > 0.0
                             ? reactor.calls_per_sec / blocking.calls_per_sec
                             : 0.0;

  std::printf("fanin: tcp ping over loopback%s\n", smoke ? " (smoke)" : "");
  for (const Arm* arm : {&serial, &blocking, &reactor}) {
    std::printf("  %-22s %12.0f calls/s   (%llu calls, %llu in flight)\n",
                arm->name.c_str(), arm->calls_per_sec,
                static_cast<unsigned long long>(arm->calls),
                static_cast<unsigned long long>(arm->inflight));
  }
  std::printf("  speedup (reactor / blocking @ %zu in flight): %.2fx\n",
              inflight, speedup);

  std::vector<JsonRecord> records;
  for (const Arm* arm : {&serial, &blocking, &reactor}) {
    records.push_back(JsonRecord{
        arm->name,
        {{"calls_per_sec", arm->calls_per_sec},
         {"calls", static_cast<double>(arm->calls)},
         {"inflight", static_cast<double>(arm->inflight)}}});
  }
  records.push_back(JsonRecord{"fanin/speedup",
                               {{"reactor_over_blocking", speedup},
                                {"inflight", static_cast<double>(inflight)}}});
  if (!write_json_records(json_path, records)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("  wrote %s\n", json_path.c_str());
  if (exporter && metrics_hold_s > 0.0) {
    std::printf("fanin: holding exporter open for %.1fs\n", metrics_hold_s);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(metrics_hold_s));
  }
  return 0;
}

}  // namespace
}  // namespace ohpx::bench

int main(int argc, char** argv) { return ohpx::bench::run(argc, argv); }
