// Offline delegation: the lab mints one delegable reference for a partner;
// the partner re-delegates narrower references to subcontractors without
// ever contacting the lab.  Caveats only shrink: nobody downstream can
// widen access, and forged or stripped tokens are refused by the lab's
// verifier.
//
// Build & run:  ./build/examples/delegated_access
#include <cstdio>

#include "ohpx/ohpx.hpp"
#include "ohpx/orb/attenuate.hpp"
#include "ohpx/scenario/echo.hpp"

using namespace ohpx;

namespace {

void attempt(const char* who, const char* what,
             const std::function<void()>& action) {
  try {
    action();
    std::printf("%-13s %-28s allowed\n", who, what);
  } catch (const CapabilityDenied& e) {
    std::printf("%-13s %-28s refused (%s)\n", who, what, e.what());
  }
}

}  // namespace

int main() {
  runtime::World world;
  const netsim::LanId lan = world.add_lan("lan");
  orb::Context& lab_ctx = world.create_context(world.add_machine("lab", lan));
  orb::Context& partner_ctx =
      world.create_context(world.add_machine("partner", lan));
  orb::Context& sub_ctx =
      world.create_context(world.add_machine("subcontractor", lan));

  // The lab mints a delegable reference.  Method ids on the Echo service:
  // echo=1, sum=2, ping=3, reverse=4, fail=5.
  auto root = cap::DelegationCapability::make_root(
      crypto::Key128::from_passphrase("lab-root"));
  orb::ObjectRef lab_ref =
      orb::RefBuilder(lab_ctx, std::make_shared<scenario::EchoServant>())
          .glue({root})
          .build();

  // Partner receives the full reference and may use everything.
  scenario::EchoPointer partner(partner_ctx, lab_ref);
  attempt("partner", "reverse (method 4)", [&] { partner->reverse("abcd"); });

  // Partner re-delegates, offline, restricted to read-only queries
  // (methods 1-3) with small payloads.
  orb::ObjectRef sub_ref = orb::attenuate_reference(
      orb::attenuate_reference(lab_ref, "method<=3"), "size<=64");
  std::printf("\npartner minted a sub-reference with caveats "
              "[method<=3, size<=64] — no lab round-trip\n\n");

  scenario::EchoPointer sub(sub_ctx, sub_ref);
  attempt("subcontractor", "ping (method 3)", [&] { sub->ping(); });
  attempt("subcontractor", "reverse (method 4)", [&] { sub->reverse("abcd"); });
  attempt("subcontractor", "big echo (payload>64)", [&] {
    sub->echo(std::vector<std::int32_t>(100, 1));
  });

  // The subcontractor cannot widen its own access.
  try {
    orb::attenuate_reference(sub_ref, "method<=999");
    scenario::EchoPointer cheat(
        sub_ctx, orb::attenuate_reference(sub_ref, "method<=999"));
    cheat->reverse("x");
    std::printf("\n!! widening succeeded — this must not happen\n");
  } catch (const CapabilityDenied&) {
    std::printf("\nwidening attempt correctly refused: caveats only stack, "
                "method<=3 still binds\n");
  }
  return 0;
}
