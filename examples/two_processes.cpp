// Genuine inter-process RMI: the program forks into a server process and a
// client process that share nothing but a pipe and a TCP port.
//
//   server process: world A, TCP-enabled context, mints a metered
//                   reference and writes its serialized bytes to the pipe.
//   client process: world B (its own topology — the server's machine ids
//                   are foreign here), rebinds the reference and calls
//                   through real loopback sockets.
//
// This exercises the full "capabilities can be exchanged between
// processes" story on actual OS processes: the quota descriptor crosses
// the pipe inside the OR, the client's copy is rebuilt from it, and the
// server-side copy enforces the shared budget.
//
// Build & run:  ./build/examples/two_processes
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "ohpx/ohpx.hpp"
#include "ohpx/scenario/echo.hpp"

using namespace ohpx;

namespace {

int run_server(int write_fd) {
  runtime::World world;
  const netsim::LanId lan = world.add_lan("server-world");
  orb::Context& ctx = world.create_context(world.add_machine("srv", lan));
  ctx.enable_tcp();

  auto ref = orb::RefBuilder(ctx, std::make_shared<scenario::EchoServant>())
                 .glue({std::make_shared<cap::QuotaCapability>(3)}, "tcp")
                 .tcp()
                 .build();
  const Bytes wire_form = ref.to_bytes();

  const std::uint32_t size = static_cast<std::uint32_t>(wire_form.size());
  if (write(write_fd, &size, sizeof(size)) != sizeof(size) ||
      write(write_fd, wire_form.data(), wire_form.size()) !=
          static_cast<ssize_t>(wire_form.size())) {
    std::perror("server: pipe write");
    return 1;
  }
  close(write_fd);
  std::printf("[server %d] reference published (%u bytes), serving on port %u\n",
              getpid(), size, ctx.current_address().tcp_port);

  // Serve until the client finishes (parent waits on the child; the
  // server just lingers long enough for the demo's calls).
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  std::printf("[server %d] shutting down\n", getpid());
  return 0;
}

int run_client(int read_fd) {
  std::uint32_t size = 0;
  if (read(read_fd, &size, sizeof(size)) != sizeof(size)) {
    std::perror("client: pipe read");
    return 1;
  }
  Bytes wire_form(size);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = read(read_fd, wire_form.data() + got, size - got);
    if (n <= 0) {
      std::perror("client: pipe read");
      return 1;
    }
    got += static_cast<std::size_t>(n);
  }
  close(read_fd);

  // A world of our own: the server's machine ids are foreign here, so the
  // placement predicates answer "not local" and the tcp protocol carries
  // the traffic.
  runtime::World world;
  const netsim::LanId lan = world.add_lan("client-world");
  orb::Context& ctx = world.create_context(world.add_machine("cli", lan));

  auto gp = scenario::EchoPointer::from_bytes(ctx, wire_form);
  std::printf("[client %d] bound reference from %zu pipe bytes\n", getpid(),
              wire_form.size());

  for (int i = 1; i <= 4; ++i) {
    try {
      const auto pong = gp->ping();
      std::printf("[client %d] ping %d -> %llu via %s\n", getpid(), i,
                  static_cast<unsigned long long>(pong),
                  gp->last_protocol().c_str());
    } catch (const CapabilityDenied& e) {
      std::printf("[client %d] ping %d refused by the capability: %s\n",
                  getpid(), i, e.what());
    }
  }
  return 0;
}

}  // namespace

int main() {
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    std::perror("pipe");
    return 1;
  }

  const pid_t child = fork();
  if (child < 0) {
    std::perror("fork");
    return 1;
  }
  if (child == 0) {
    // Child: the client.  Flush before _exit, which skips stdio teardown.
    close(pipe_fds[1]);
    const int rc = run_client(pipe_fds[0]);
    std::fflush(stdout);
    _exit(rc);
  }

  // Parent: the server.
  close(pipe_fds[0]);
  const int rc = run_server(pipe_fds[1]);
  int status = 0;
  waitpid(child, &status, 0);
  return rc != 0 ? rc : (WIFEXITED(status) ? WEXITSTATUS(status) : 1);
}
