// Runnable walk-through of the paper's Figure 4 experiment: a server
// object pseudo-migrates M1 → M2 → M3 → M0 while one client on M0 keeps
// calling through the same global pointer.  At every stage the ORB
// re-selects the best applicable protocol from the OR's table:
//
//   M1 (remote campus)      -> glue[timeout+security] over nexus-tcp
//   M2 (same campus)        -> glue[timeout] over nexus-tcp
//   M3 (same LAN)           -> plain nexus-tcp
//   M0 (same machine)       -> shared memory
//
// Build & run:  ./build/examples/migration_adaptive
#include <cstdio>

#include "ohpx/ohpx.hpp"
#include "ohpx/scenario/figure4.hpp"

using namespace ohpx;

namespace {

void measure_stage(scenario::Figure4Scenario& fig, scenario::EchoPointer& gp,
                   const char* stage) {
  std::vector<std::int32_t> payload(64 * 1024);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::int32_t>(i);
  }

  CostLedger ledger;
  auto reply = gp->echo_with_cost(ledger, payload);
  const double seconds = ledger.total_seconds();
  const double mbps =
      2.0 * 4.0 * static_cast<double>(payload.size()) * 8.0 / (seconds * 1e6);

  std::printf("%-22s server on %-3s  protocol %-42s  %8.2f Mbps\n", stage,
              fig.world().topology().machine_name(fig.server_machine()).c_str(),
              gp->last_protocol().c_str(), mbps);
  if (reply != payload) std::printf("  !! echo mismatch\n");
}

}  // namespace

int main() {
  scenario::Figure4Scenario fig(netsim::atm_155(), netsim::wan_t3());
  scenario::EchoPointer gp = fig.client_pointer();

  std::printf("client runs on M0; OR protocol table: "
              "[glue[timeout,security], glue[timeout], shm, nexus-tcp]\n\n");

  measure_stage(fig, gp, "stage 1 (start)");

  fig.migrate_to(fig.m2());
  measure_stage(fig, gp, "stage 3 (after mig 1)");

  fig.migrate_to(fig.m3());
  measure_stage(fig, gp, "stage 5 (after mig 2)");

  fig.migrate_to(fig.m0());
  measure_stage(fig, gp, "stage 7 (after mig 3)");

  std::printf("\nthe same global pointer adapted through four protocols "
              "without any client-side change.\n");
  return 0;
}
