// Naming-service walk-through: a server publishes differently-guarded
// references to one object under well-known names; clients bootstrap from
// the directory's reference and resolve what they are entitled to.
//
// Build & run:  ./build/examples/name_service
#include <cstdio>

#include "ohpx/ohpx.hpp"
#include "ohpx/scenario/echo.hpp"

using namespace ohpx;

int main() {
  runtime::World world;
  const netsim::LanId lan = world.add_lan("lan");
  const netsim::MachineId m_server = world.add_machine("server", lan);
  const netsim::MachineId m_client = world.add_machine("client", lan);
  orb::Context& server_ctx = world.create_context(m_server);
  orb::Context& client_ctx = world.create_context(m_client);

  // The directory itself is a remote object.
  naming::NameServiceHost directory(server_ctx);

  // One echo object, three published access policies.
  auto servant = std::make_shared<scenario::EchoServant>();
  const orb::ObjectRef full =
      orb::RefBuilder(server_ctx, servant).build();
  const orb::ObjectRef metered =
      orb::RefBuilder(server_ctx, full.object_id())
          .glue({std::make_shared<cap::QuotaCapability>(2)})
          .build();
  const orb::ObjectRef sealed =
      orb::RefBuilder(server_ctx, full.object_id())
          .glue({std::make_shared<cap::EncryptionCapability>(
                     crypto::Key128::from_passphrase("sealed")),
                 std::make_shared<cap::ChecksumCapability>()})
          .build();

  directory.service().bind("echo/full", full);
  directory.service().bind("echo/metered", metered);
  directory.service().bind("echo/sealed", sealed);

  // A client boots from the directory's serialized reference alone.
  naming::NamePointer names =
      naming::NamePointer::from_bytes(client_ctx, directory.ref().to_bytes());

  std::printf("directory lists under echo/:\n");
  for (const auto& name : names->list("echo/")) {
    std::printf("  %s\n", name.c_str());
  }

  scenario::EchoPointer full_client(client_ctx, names->resolve("echo/full"));
  const std::string reversed = full_client->reverse("named");
  std::printf("echo/full:    reverse(\"named\") = %s  via %s\n",
              reversed.c_str(), full_client->last_protocol().c_str());

  scenario::EchoPointer sealed_client(client_ctx, names->resolve("echo/sealed"));
  const auto ping = sealed_client->ping();
  std::printf("echo/sealed:  ping = %llu  via %s\n",
              static_cast<unsigned long long>(ping),
              sealed_client->last_protocol().c_str());

  scenario::EchoPointer metered_client(client_ctx,
                                       names->resolve("echo/metered"));
  metered_client->ping();
  metered_client->ping();
  try {
    metered_client->ping();
  } catch (const CapabilityDenied& e) {
    std::printf("echo/metered: third call refused (%s)\n", e.what());
  }
  return 0;
}
