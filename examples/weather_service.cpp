// The paper's §1 motivating scenario, end to end: "a large environmental
// simulation running on a multi-processor supercomputer at a national lab"
// serving very different client classes:
//
//   * a local analysis tool on the lab's own LAN — full interface, no
//     authentication, no encryption;
//   * a university client across the Internet — authenticated + encrypted
//     on every request;
//   * a commercial client that paid for a fixed number of map fetches — a
//     call quota;
//   * a subscriber with time-limited access — a lease;
//   * a public kiosk that may only read the text summary — a restricted
//     facade interface.
//
// Each class is just a different OR minted for the same simulation object
// (plus one facade servant), demonstrating per-reference access policy.
//
// Build & run:  ./build/examples/weather_service
#include <chrono>
#include <cstdio>
#include <thread>

#include "ohpx/ohpx.hpp"

namespace {

using namespace ohpx;

// ---- the simulation servant ------------------------------------------------

class WeatherServant final : public orb::Servant {
 public:
  static constexpr std::string_view kTypeName = "WeatherSim";
  enum Method : std::uint32_t {
    kGetMap = 1,    // (region: string, cells: u32) -> vector<f64>
    kFeedData = 2,  // (readings: vector<f64>) -> u64 (total samples)
    kSummary = 3,   // () -> string
  };

  std::string_view type_name() const noexcept override { return kTypeName; }

  void dispatch(std::uint32_t method_id, wire::Decoder& in,
                wire::Encoder& out) override {
    switch (method_id) {
      case kGetMap: {
        auto [region, cells] = orb::unmarshal<std::string, std::uint32_t>(in);
        std::vector<double> grid(cells);
        // A toy "simulation": deterministic pseudo-weather per region.
        std::uint64_t h = 1469598103934665603ull;
        for (char c : region) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
        for (std::uint32_t i = 0; i < cells; ++i) {
          grid[i] = 15.0 + static_cast<double>((h + i * 2654435761ull) % 200) / 10.0;
        }
        orb::marshal_result(out, grid);
        return;
      }
      case kFeedData: {
        auto [readings] = orb::unmarshal<std::vector<double>>(in);
        samples_ += readings.size();
        orb::marshal_result(out, samples_);
        return;
      }
      case kSummary:
        orb::marshal_result(out,
                            std::string("forecast: scattered clouds, ") +
                                std::to_string(samples_) + " samples assimilated");
        return;
      default:
        orb::unknown_method(kTypeName, method_id);
    }
  }

 private:
  std::uint64_t samples_ = 0;
};

class WeatherStub : public orb::ObjectStub {
 public:
  static constexpr std::string_view kTypeName = WeatherServant::kTypeName;
  using ObjectStub::ObjectStub;

  std::vector<double> get_map(const std::string& region, std::uint32_t cells) {
    return call<std::vector<double>>(WeatherServant::kGetMap, region, cells);
  }
  std::uint64_t feed_data(const std::vector<double>& readings) {
    return call<std::uint64_t>(WeatherServant::kFeedData, readings);
  }
  std::string summary() { return call<std::string>(WeatherServant::kSummary); }
};

// ---- restricted facade: summary only ---------------------------------------

class WeatherKioskServant final : public orb::Servant {
 public:
  static constexpr std::string_view kTypeName = "WeatherKiosk";
  enum Method : std::uint32_t { kSummary = 1 };

  explicit WeatherKioskServant(std::shared_ptr<WeatherServant> backend)
      : backend_(std::move(backend)) {}

  std::string_view type_name() const noexcept override { return kTypeName; }

  void dispatch(std::uint32_t method_id, wire::Decoder& in,
                wire::Encoder& out) override {
    if (method_id != kSummary) orb::unknown_method(kTypeName, method_id);
    // Forward to the full servant's summary method only.
    backend_->dispatch(WeatherServant::kSummary, in, out);
  }

 private:
  std::shared_ptr<WeatherServant> backend_;
};

class WeatherKioskStub : public orb::ObjectStub {
 public:
  static constexpr std::string_view kTypeName = WeatherKioskServant::kTypeName;
  using ObjectStub::ObjectStub;
  std::string summary() {
    return call<std::string>(WeatherKioskServant::kSummary);
  }
};

void banner(const char* text) { std::printf("\n== %s ==\n", text); }

}  // namespace

int main() {
  // Topology: the lab's LAN (campus 0) and a university LAN across the
  // Internet (campus 1).
  runtime::World world;
  const netsim::LanId lab_lan = world.add_lan("lab");
  const netsim::LanId uni_lan = world.add_lan("university");
  world.topology().set_campus(lab_lan, 0);
  world.topology().set_campus(uni_lan, 1);
  world.topology().set_lan_link(lab_lan, netsim::atm_155());
  world.topology().set_lan_link(uni_lan, netsim::fast_ethernet_100());
  world.topology().set_default_wan_link(netsim::wan_t3());

  const netsim::MachineId supercomputer = world.add_machine("bigiron", lab_lan);
  const netsim::MachineId lab_workstation = world.add_machine("ws-17", lab_lan);
  const netsim::MachineId uni_box = world.add_machine("uni-cluster", uni_lan);

  orb::Context& sim_ctx = world.create_context(supercomputer);
  orb::Context& lab_ctx = world.create_context(lab_workstation);
  orb::Context& uni_ctx = world.create_context(uni_box);

  auto sim = std::make_shared<WeatherServant>();
  const orb::ObjectId sim_id = sim_ctx.activate(sim);

  const crypto::Key128 uni_key = crypto::Key128::from_passphrase("uni-secret");

  // ---- per-client references ----------------------------------------------

  // Local lab client: plain reference, full interface.
  orb::ObjectRef lab_ref = orb::RefBuilder(sim_ctx, sim_id).build();

  // University client: authenticated + encrypted on every request, but only
  // when traffic actually crosses campuses (scope = cross_campus).
  orb::ObjectRef uni_ref =
      orb::RefBuilder(sim_ctx, sim_id)
          .glue({std::make_shared<cap::AuthenticationCapability>(
                     uni_key, "uni-client", cap::Scope::cross_campus),
                 std::make_shared<cap::EncryptionCapability>(
                     uni_key, cap::Scope::cross_campus)},
                "nexus-tcp")
          .shm()
          .nexus()
          .build();

  // Commercial client: 3 paid map fetches.
  orb::ObjectRef paid_ref =
      orb::RefBuilder(sim_ctx, sim_id)
          .glue({std::make_shared<cap::QuotaCapability>(3)})
          .build();

  // Subscriber: 150 ms of access.
  orb::ObjectRef lease_ref =
      orb::RefBuilder(sim_ctx, sim_id)
          .glue({std::make_shared<cap::LeaseCapability>(
              std::chrono::milliseconds(150))})
          .build();

  // Public kiosk: separate facade object, summary only.
  orb::ObjectRef kiosk_ref =
      orb::RefBuilder(sim_ctx, std::make_shared<WeatherKioskServant>(sim))
          .build();

  // ---- the client classes in action ---------------------------------------

  banner("local lab client (trusted, full interface)");
  orb::GlobalPointer<WeatherStub> lab_client(lab_ctx, lab_ref);
  lab_client->feed_data({21.3, 20.9, 22.1, 19.8});
  auto map = lab_client->get_map("bloomington", 16);
  std::printf("map[0..3] = %.1f %.1f %.1f %.1f  via %s\n", map[0], map[1],
              map[2], map[3], lab_client->last_protocol().c_str());

  banner("university client (authenticated + encrypted across the WAN)");
  orb::GlobalPointer<WeatherStub> uni_client(uni_ctx, uni_ref);
  map = uni_client->get_map("indianapolis", 8);
  std::printf("map[0] = %.1f  via %s\n", map[0],
              uni_client->last_protocol().c_str());

  banner("commercial client (3 paid fetches)");
  orb::GlobalPointer<WeatherStub> paid_client(uni_ctx, paid_ref);
  for (int i = 1; i <= 4; ++i) {
    try {
      paid_client->get_map("chicago", 4);
      std::printf("fetch %d ok\n", i);
    } catch (const CapabilityDenied& e) {
      std::printf("fetch %d refused: %s\n", i, e.what());
    }
  }

  banner("subscriber (150 ms lease)");
  orb::GlobalPointer<WeatherStub> subscriber(lab_ctx, lease_ref);
  std::printf("within lease: %zu cells\n",
              subscriber->get_map("gary", 4).size());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  try {
    subscriber->get_map("gary", 4);
  } catch (const CapabilityDenied& e) {
    std::printf("after lease: %s\n", e.what());
  }

  banner("public kiosk (restricted facade)");
  orb::GlobalPointer<WeatherKioskStub> kiosk(uni_ctx, kiosk_ref);
  std::printf("%s\n", kiosk->summary().c_str());

  banner("what the ORB observed (metrics)");
  std::printf("%s", metrics::format_snapshot(
                        metrics::MetricsRegistry::global().snapshot())
                        .c_str());
  return 0;
}
