// Quickstart: the smallest complete Open HPC++ program.
//
//   1. Build a world (topology + contexts).
//   2. Implement a servant and mint an object reference for it.
//   3. Bind a global pointer and make remote calls.
//   4. Attach capabilities to a second reference for the same object.
//
// Build & run:  ./build/examples/quickstart
//
// Pass `--trace out.json` to record every call with the ohpx::trace
// subsystem and export a Chrome trace_event file (open it in
// chrome://tracing or Perfetto; docs/observability.md walks through it).
#include <cstdio>
#include <fstream>
#include <string_view>

#include "ohpx/ohpx.hpp"

namespace {

using namespace ohpx;

// ---- 1. the remote interface: a greeter -----------------------------------

class GreeterServant final : public orb::Servant {
 public:
  static constexpr std::string_view kTypeName = "Greeter";
  enum Method : std::uint32_t { kGreet = 1, kCount = 2 };

  std::string_view type_name() const noexcept override { return kTypeName; }

  void dispatch(std::uint32_t method_id, wire::Decoder& in,
                wire::Encoder& out) override {
    switch (method_id) {
      case kGreet: {
        auto [name] = orb::unmarshal<std::string>(in);
        ++greetings_;
        orb::marshal_result(out, "Hello, " + name + "!");
        return;
      }
      case kCount:
        orb::marshal_result(out, greetings_);
        return;
      default:
        orb::unknown_method(kTypeName, method_id);
    }
  }

 private:
  std::uint64_t greetings_ = 0;
};

class GreeterStub : public orb::ObjectStub {
 public:
  static constexpr std::string_view kTypeName = GreeterServant::kTypeName;
  using ObjectStub::ObjectStub;

  std::string greet(const std::string& name) {
    return call<std::string>(GreeterServant::kGreet, name);
  }
  std::uint64_t count() { return call<std::uint64_t>(GreeterServant::kCount); }
};

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    }
  }
  if (trace_path != nullptr) {
    trace::TraceSink::global().set_sampling(trace::Sampling::always);
  }

  // ---- 2. a world: two machines on one LAN --------------------------------
  runtime::World world;
  const netsim::LanId lan = world.add_lan("office");
  const netsim::MachineId laptop = world.add_machine("laptop", lan);
  const netsim::MachineId server_box = world.add_machine("server", lan);

  orb::Context& client_ctx = world.create_context(laptop);
  orb::Context& server_ctx = world.create_context(server_box);

  // ---- 3. activate a servant and call it ----------------------------------
  orb::ObjectRef ref =
      orb::RefBuilder(server_ctx, std::make_shared<GreeterServant>()).build();

  orb::GlobalPointer<GreeterStub> greeter(client_ctx, ref);
  std::printf("remote says: %s\n", greeter->greet("world").c_str());
  std::printf("transport used: %s\n", greeter->last_protocol().c_str());

  // ---- 4. a capability-guarded reference to the same object ---------------
  auto quota = std::make_shared<cap::QuotaCapability>(2);
  orb::ObjectRef metered_ref =
      orb::RefBuilder(server_ctx, ref.object_id()).glue({quota}).build();

  orb::GlobalPointer<GreeterStub> metered(client_ctx, metered_ref);
  std::printf("metered call 1: %s\n", metered->greet("Ada").c_str());
  std::printf("metered call 2: %s\n", metered->greet("Grace").c_str());
  try {
    metered->greet("Edsger");
  } catch (const CapabilityDenied& e) {
    std::printf("metered call 3 refused: %s\n", e.what());
  }

  std::printf("total greetings served: %llu\n",
              static_cast<unsigned long long>(greeter->count()));

  // ---- 5. export the recorded trace ---------------------------------------
  if (trace_path != nullptr) {
    const trace::TraceSnapshot snap = trace::TraceSink::global().snapshot();
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_path);
      return 1;
    }
    out << trace::to_chrome_json(snap);
    std::printf("wrote %zu spans to %s\n", snap.spans.size(), trace_path);
  }
  return 0;
}
