// Load balancing working in tandem with capabilities (paper §4.3): when a
// machine crosses the high-water mark, the balancer migrates objects away;
// every client's protocol/capability choice adapts on its next call.
//
// Three compute objects start on one overloaded node.  The balancer drains
// it; a client on the destination machine watches its calls switch from
// authenticated WAN traffic to raw shared memory.
//
// Build & run:  ./build/examples/load_balance
#include <cstdio>

#include "ohpx/ohpx.hpp"
#include "ohpx/scenario/counter.hpp"

using namespace ohpx;

int main() {
  set_log_level(LogLevel::info);  // narrate migrations

  runtime::World world;
  const netsim::LanId lan_hot = world.add_lan("hot-site");
  const netsim::LanId lan_cool = world.add_lan("cool-site");
  world.topology().set_campus(lan_hot, 0);
  world.topology().set_campus(lan_cool, 1);

  const netsim::MachineId hot = world.add_machine("hot", lan_hot);
  const netsim::MachineId cool = world.add_machine("cool", lan_cool);
  orb::Context& hot_ctx = world.create_context(hot);
  orb::Context& client_ctx = world.create_context(cool);

  // Three counters on the hot machine, each behind an authenticated glue
  // protocol that only applies across campuses.
  const crypto::Key128 key = crypto::Key128::from_seed(99);
  std::vector<orb::ObjectRef> refs;
  for (int i = 0; i < 3; ++i) {
    refs.push_back(
        orb::RefBuilder(hot_ctx, std::make_shared<scenario::CounterServant>())
            .glue({std::make_shared<cap::AuthenticationCapability>(
                      key, "lb-demo", cap::Scope::cross_campus)},
                  "nexus-tcp")
            .shm()
            .nexus()
            .build());
  }

  runtime::LoadBalancer balancer(world, {.high_water = 0.75,
                                         .target_water = 0.4,
                                         .max_migrations_per_round = 8});
  for (const auto& ref : refs) balancer.track(ref.object_id(), 0.25);

  world.topology().set_load(hot, 0.9);
  world.topology().set_load(cool, 0.1);

  scenario::CounterPointer gp(client_ctx, refs[0]);
  gp->add(1);
  std::printf("before rebalance: load(hot)=%.2f, client uses %s\n",
              world.topology().load(hot), gp->last_protocol().c_str());

  const auto events = balancer.rebalance_once();
  std::printf("balancer moved %zu object(s)\n", events.size());
  for (const auto& event : events) {
    std::printf("  object %llu: %s -> %s (load %.2f)\n",
                static_cast<unsigned long long>(event.object_id),
                world.topology().machine_name(event.from_machine).c_str(),
                world.topology().machine_name(event.to_machine).c_str(),
                event.load_moved);
  }

  gp->add(1);
  std::printf("after rebalance:  load(hot)=%.2f, client uses %s, value=%lld\n",
              world.topology().load(hot), gp->last_protocol().c_str(),
              static_cast<long long>(gp->get()));
  return 0;
}
