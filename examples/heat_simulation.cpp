// The paper's §1 story end-to-end with a real computation: an
// environmental (heat-diffusion) simulation runs at the lab; a field
// station streams sensor readings in with oneway calls; an analyst across
// the WAN fetches authenticated, encrypted weather maps; and when the lab
// machine gets busy the simulation migrates — grid and all — to a standby
// node while every client adapts.
//
// Build & run:  ./build/examples/heat_simulation
#include <cstdio>

#include "ohpx/ohpx.hpp"
#include "ohpx/scenario/heatsim.hpp"

using namespace ohpx;

int main() {
  runtime::World world;
  const netsim::LanId lab_lan = world.add_lan("lab");
  const netsim::LanId field_lan = world.add_lan("field");
  world.topology().set_campus(lab_lan, 0);
  world.topology().set_campus(field_lan, 1);
  world.topology().set_lan_link(lab_lan, netsim::atm_155());
  world.topology().set_default_wan_link(netsim::wan_t3());

  const auto bigiron = world.add_machine("bigiron", lab_lan);
  const auto standby = world.add_machine("standby", lab_lan);
  const auto field_box = world.add_machine("field-station", field_lan);

  orb::Context& lab_ctx = world.create_context(bigiron);
  orb::Context& standby_ctx = world.create_context(standby);
  orb::Context& field_ctx = world.create_context(field_box);

  auto sim = std::make_shared<scenario::HeatSimServant>();
  const orb::ObjectId sim_id = lab_ctx.activate(sim);

  const auto key = crypto::Key128::from_passphrase("field-secret");

  // Field station: oneway injections, authenticated across the WAN.
  orb::ObjectRef feeder_ref =
      orb::RefBuilder(lab_ctx, sim_id)
          .glue({std::make_shared<cap::AuthenticationCapability>(
                    key, "field-station", cap::Scope::cross_campus)})
          .build();

  // Analyst: encrypted + authenticated map fetches.
  orb::ObjectRef analyst_ref =
      orb::RefBuilder(lab_ctx, sim_id)
          .glue({std::make_shared<cap::EncryptionCapability>(key),
                 std::make_shared<cap::AuthenticationCapability>(
                     key, "analyst", cap::Scope::always)})
          .shm()
          .nexus()
          .build();

  scenario::HeatSimPointer control(lab_ctx, orb::RefBuilder(lab_ctx, sim_id).build());
  control->init(64, 64, 12.0);

  scenario::HeatSimPointer feeder(field_ctx, feeder_ref);
  std::printf("field station streams 5 sensor readings (oneway, %s)\n",
              feeder->probe_protocol().c_str());
  for (std::uint32_t i = 0; i < 5; ++i) {
    feeder->call_oneway(scenario::HeatSimServant::kInject,
                        std::uint32_t{20 + i}, std::uint32_t{30}, 400.0 + i);
  }

  const double residual = control->step(25);
  std::printf("simulation stepped 25 sweeps (last residual %.3f)\n", residual);

  scenario::HeatSimPointer analyst(field_ctx, analyst_ref);
  auto map = analyst->fetch_map(8);
  const auto [lo, hi] = analyst->stats();
  std::printf("analyst fetched %zu-cell map via %s (temps %.1f..%.1f)\n",
              map.size(), analyst->last_protocol().c_str(), lo, hi);

  // bigiron heats up (pun intended): migrate the sim to the standby node.
  runtime::migrate_shared(sim_id, lab_ctx, standby_ctx);
  map = analyst->fetch_map(8);
  std::printf("after migration to standby: analyst still gets %zu cells via %s\n",
              map.size(), analyst->last_protocol().c_str());
  return 0;
}
