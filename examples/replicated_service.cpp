// Replicated service with group pointers: three replicas of a counter
// service on a topology declared in the text DSL; clients spread load with
// round_robin, aggregate with broadcast, and survive a replica loss with
// any() failover.
//
// Build & run:  ./build/examples/replicated_service
#include <cstdio>

#include "ohpx/ohpx.hpp"
#include "ohpx/netsim/parser.hpp"
#include "ohpx/scenario/counter.hpp"

using namespace ohpx;

int main() {
  // Topology from text — three server nodes and a client box on one LAN.
  const auto parsed = netsim::parse_topology(R"(
    lan cluster atm155
    machine node0 cluster
    machine node1 cluster
    machine node2 cluster
    machine client cluster
  )");

  // A World normally owns its topology; for a parsed one we drive the
  // contexts directly off a location service.
  orb::LocationService location;
  std::vector<std::unique_ptr<orb::Context>> contexts;
  std::vector<orb::ObjectRef> replicas;
  std::vector<std::shared_ptr<scenario::CounterServant>> servants;
  for (int i = 0; i < 3; ++i) {
    contexts.push_back(std::make_unique<orb::Context>(
        orb::Context::allocate_id(),
        parsed.machine("node" + std::to_string(i)), parsed.topology(),
        location));
    servants.push_back(std::make_shared<scenario::CounterServant>());
    replicas.push_back(
        orb::RefBuilder(*contexts.back(), servants.back()).build());
  }
  orb::Context client_ctx(orb::Context::allocate_id(),
                          parsed.machine("client"), parsed.topology(),
                          location);

  hpcxx::GroupPointer<scenario::CounterStub> group(client_ctx, replicas);

  // Round-robin: spread 9 increments across the replicas.
  for (int i = 0; i < 9; ++i) {
    group.round_robin<std::int64_t>(
        [](scenario::CounterStub& stub) { return stub.add(1); });
  }
  std::printf("after 9 round-robin adds: replica values =");
  const auto values = group.broadcast<std::int64_t>(
      [](scenario::CounterStub& stub) { return stub.get(); });
  for (const auto value : values) std::printf(" %lld", static_cast<long long>(value));
  std::printf("\n");

  // Failover: kill replica 0, any() transparently uses the next one.
  contexts[0]->deactivate(replicas[0].object_id());
  const auto survivor = group.any<std::int64_t>(
      [](scenario::CounterStub& stub) { return stub.add(100); });
  std::printf("after replica 0 died, any() landed on a survivor: %lld\n",
              static_cast<long long>(survivor));
  return 0;
}
