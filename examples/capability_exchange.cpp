// Capabilities travel with references (paper §4: "capabilities can be
// exchanged between processes").
//
// A server mints a metered reference (quota = 4 calls) and hands it to
// client A.  A uses part of the budget, serializes the reference — the
// remaining quota rides along inside the capability descriptor — and
// forwards the bytes to client B in a different context.  B consumes the
// rest; the fifth call anywhere is refused.  Contrast with OIP "illities",
// which are bound to a thread and cannot be passed this way (paper §6).
//
// Build & run:  ./build/examples/capability_exchange
#include <cstdio>

#include "ohpx/ohpx.hpp"
#include "ohpx/scenario/echo.hpp"

using namespace ohpx;

int main() {
  runtime::World world;
  const netsim::LanId lan = world.add_lan("lan");
  const netsim::MachineId m_server = world.add_machine("server", lan);
  const netsim::MachineId m_a = world.add_machine("alice-box", lan);
  const netsim::MachineId m_b = world.add_machine("bob-box", lan);

  orb::Context& server_ctx = world.create_context(m_server);
  orb::Context& alice_ctx = world.create_context(m_a);
  orb::Context& bob_ctx = world.create_context(m_b);

  // A reference worth 4 calls, total, no matter who holds it.
  auto quota = std::make_shared<cap::QuotaCapability>(4);
  orb::ObjectRef ref =
      orb::RefBuilder(server_ctx, std::make_shared<scenario::EchoServant>())
          .glue({quota})
          .build();

  std::printf("server minted a reference with a 4-call quota\n");

  scenario::EchoPointer alice(alice_ctx, ref);
  alice->ping();
  alice->ping();
  std::printf("alice used 2 calls (server-side count: %llu)\n",
              static_cast<unsigned long long>(quota->used()));

  // Alice serializes her reference and sends the bytes to Bob.  This is
  // the exchange: the OR carries the glue entry whose descriptors include
  // the capability kind and parameters.
  const Bytes wire_form = alice->ref().to_bytes();
  std::printf("reference serialized to %zu bytes and sent to bob\n",
              wire_form.size());

  scenario::EchoPointer bob =
      scenario::EchoPointer::from_bytes(bob_ctx, wire_form);
  bob->ping();
  bob->ping();
  std::printf("bob used 2 calls (server-side count: %llu)\n",
              static_cast<unsigned long long>(quota->used()));

  try {
    bob->ping();
  } catch (const CapabilityDenied& e) {
    std::printf("bob's 3rd call refused by the server-side capability: %s\n",
                e.what());
  }
  try {
    alice->ping();
  } catch (const CapabilityDenied& e) {
    std::printf("alice is refused too (shared budget): %s\n", e.what());
  }
  return 0;
}
