// ohpx-hostd — a process-hosted context daemon (docs/deployment.md).
//
// Boots a runtime::ProcessHost from flags/config, serves the scenario
// echo servant, and (with --serve NAME) advertises it as a replica of
// NAME at the ohpx-named directory, heartbeats included.  Several hostd
// processes advertising the same name form a replica set clients fail
// over across.
//
//   ohpx-named --port 7400 &
//   ohpx-hostd --named 127.0.0.1:7400 --machine srv-a --serve svc/echo &
//   ohpx-hostd --named 127.0.0.1:7400 --machine srv-b --serve svc/echo &
//
// stdout protocol (consumed by scripts and the multiprocess test): the
// first line is "READY <pid> <port> <replica-id>", flushed before serving.
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "ohpx/ohpx.hpp"
#include "ohpx/runtime/process_host.hpp"
#include "ohpx/scenario/echo.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace ohpx;

  // Split our own flags (--serve, --run-ms) from the ProcessHostConfig
  // flags, which from_args parses strictly.
  std::string serve_name;
  long run_ms = 0;
  std::vector<const char*> config_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--serve" && i + 1 < argc) {
      serve_name = argv[++i];
    } else if (flag == "--run-ms" && i + 1 < argc) {
      run_ms = std::atol(argv[++i]);
    } else {
      config_args.push_back(argv[i]);
    }
  }

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);

  try {
    const auto config = runtime::ProcessHostConfig::from_args(
        static_cast<int>(config_args.size()), config_args.data());
    runtime::ProcessHost host(config);

    orb::Context& ctx = host.context();
    auto ref = orb::RefBuilder(ctx, std::make_shared<scenario::EchoServant>())
                   .tcp()
                   .build();

    std::uint64_t replica_id = 0;
    if (!serve_name.empty()) {
      replica_id = host.advertise(serve_name, ref);
    }
    std::printf("READY %d %u %llu\n", static_cast<int>(getpid()), host.port(),
                static_cast<unsigned long long>(replica_id));
    std::printf("ohpx-hostd: machine %s, %zu context(s)%s%s\n",
                config.machine_name.c_str(), host.context_count(),
                serve_name.empty() ? "" : ", serving ",
                serve_name.c_str());
    std::fflush(stdout);

    const auto started = std::chrono::steady_clock::now();
    while (!g_stop) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (run_ms > 0 && std::chrono::steady_clock::now() - started >
                            std::chrono::milliseconds(run_ms)) {
        break;
      }
    }
    std::printf("ohpx-hostd: shutting down\n");
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "ohpx-hostd: %s\n", e.what());
    return 1;
  }
}
