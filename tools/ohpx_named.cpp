// ohpx-named — the standalone name-service daemon (docs/deployment.md).
//
// Wraps a NameServiceServant behind the well-known bootstrap object id on
// a real TCP listener, sweeps expired replica leases periodically, and
// optionally writes its serialized bootstrap reference to a file so
// clients can bootstrap from either form:
//
//   ohpx-named --host 0.0.0.0 --port 7400 --advertise ns.cluster.local \
//              --ref-file /var/run/ohpx/named.ref
//
// stdout protocol (consumed by scripts and the multiprocess test): the
// first line is "READY <port> <uri>", flushed before serving begins.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "ohpx/naming/bootstrap.hpp"
#include "ohpx/naming/name_service.hpp"
#include "ohpx/ohpx.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = 1; }

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string advertise;
  std::string ref_file;
  long sweep_ms = 500;
  long run_ms = 0;  // 0 = until signalled
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--advertise H]\n"
               "          [--ref-file PATH] [--sweep-ms N] [--run-ms N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ohpx;

  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--host" && (v = value())) {
      opts.host = v;
    } else if (flag == "--port" && (v = value())) {
      opts.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (flag == "--advertise" && (v = value())) {
      opts.advertise = v;
    } else if (flag == "--ref-file" && (v = value())) {
      opts.ref_file = v;
    } else if (flag == "--sweep-ms" && (v = value())) {
      opts.sweep_ms = std::atol(v);
    } else if (flag == "--run-ms" && (v = value())) {
      opts.run_ms = std::atol(v);
    } else {
      return usage(argv[0]);
    }
  }
  if (opts.sweep_ms <= 0) opts.sweep_ms = 500;

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);

  runtime::World world;
  const netsim::LanId lan = world.add_lan("named-lan");
  orb::Context& ctx = world.create_context(world.add_machine("named", lan));
  ctx.enable_tcp(opts.host, opts.port, opts.advertise);

  auto directory = std::make_shared<naming::NameServiceServant>();
  ctx.activate_with_id(naming::kWellKnownNameServiceId, directory);

  const proto::ServerAddress address = ctx.current_address();
  const std::string uri =
      address.tcp_host + ":" + std::to_string(address.tcp_port);
  if (!opts.ref_file.empty()) {
    naming::write_bootstrap_file(
        opts.ref_file,
        naming::make_bootstrap_ref(address.tcp_host, address.tcp_port));
  }
  std::printf("READY %u %s\n", address.tcp_port, uri.c_str());
  std::printf("ohpx-named: directory %llx on %s (sweep every %ld ms)\n",
              static_cast<unsigned long long>(naming::kWellKnownNameServiceId),
              uri.c_str(), opts.sweep_ms);
  std::fflush(stdout);

  const auto started = std::chrono::steady_clock::now();
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opts.sweep_ms));
    const std::size_t swept = directory->sweep_expired();
    if (swept > 0) {
      std::printf("ohpx-named: swept %zu expired replica(s), %zu name(s) live\n",
                  swept, directory->size());
      std::fflush(stdout);
    }
    if (opts.run_ms > 0 && std::chrono::steady_clock::now() - started >
                               std::chrono::milliseconds(opts.run_ms)) {
      break;
    }
  }
  std::printf("ohpx-named: shutting down\n");
  return 0;
}
