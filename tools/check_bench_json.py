#!/usr/bin/env python3
"""check_bench_json: gate benchmark JSON emitted by the bench suite.

Two gates, both expressed as *within-run ratios* rather than absolute
nanoseconds: CI runners (and shared-host dev boxes) differ wildly in raw
speed and in neighbor noise, but both arms of a ratio share the same run,
the same machine, and the same noise — so the ratio is the portable
quantity.

  fanin     BENCH_fanin.json must show the reactor beating the blocking
            thread-per-call arm by at least --min-speedup at matched
            concurrency (the tentpole claim: one event loop with N calls
            in flight vs. N parked threads).

  naming    BENCH_naming.json must show (a) World::find_context_of staying
            O(1)-ish — the 512-context arm may cost at most
            --max-find-ratio times the 8-context arm, where a linear scan
            would cost ~64x — and (b) the NameClient resolve cache still
            earning its keep: the fresh (uncached) resolve must be at
            least --min-cache-speedup times slower than the cached probe.

  fastpath  BENCH_fastpath.json must keep the selection cache's
            cached-over-uncached speedup within --tolerance of the
            committed baseline's speedup.  A hot-path regression that
            slows *only* the cached arm shrinks the ratio and trips the
            gate; noise that slows the whole run does not (it moves both
            arms together).  This is the "<5% cached-p50 regression"
            budget in ratio form.

Usage:
  python3 tools/check_bench_json.py fanin FANIN.json [--min-speedup 2.0]
  python3 tools/check_bench_json.py naming NAMING.json \
      [--max-find-ratio 8.0] [--min-cache-speedup 3.0]
  python3 tools/check_bench_json.py fastpath FRESH.json BASELINE.json \
      [--tolerance 0.05]
"""

from __future__ import annotations

import argparse
import json
import sys


def fail(message: str) -> int:
    print(f"check_bench_json: FAIL: {message}")
    return 1


def load_records(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(fail(f"{path}: {error}"))
    records = doc.get("benchmarks")
    if not isinstance(records, list):
        raise SystemExit(fail(f"{path}: no top-level 'benchmarks' list"))
    return {r.get("name"): r for r in records if isinstance(r, dict)}


def record_value(records: dict, path: str, name: str, key: str) -> float:
    record = records.get(name)
    if record is None:
        raise SystemExit(fail(f"{path}: missing record '{name}'"))
    value = record.get(key)
    if not isinstance(value, (int, float)):
        raise SystemExit(fail(f"{path}: '{name}' lacks numeric '{key}'"))
    return float(value)


def check_fanin(options: argparse.Namespace) -> int:
    records = load_records(options.json)
    speedup = record_value(records, options.json, "fanin/speedup",
                           "reactor_over_blocking")
    inflight = record_value(records, options.json, "fanin/speedup",
                            "inflight")
    if speedup < options.min_speedup:
        return fail(
            f"fanin speedup {speedup:.2f}x @ {inflight:.0f} in flight is "
            f"below the {options.min_speedup:.2f}x floor")
    print(f"check_bench_json: OK: fanin reactor/blocking {speedup:.2f}x "
          f"@ {inflight:.0f} in flight (floor {options.min_speedup:.2f}x)")
    return 0


def check_naming(options: argparse.Namespace) -> int:
    records = load_records(options.json)
    find_small = record_value(records, options.json, "Name_FindContext/8",
                              "real_time")
    find_large = record_value(records, options.json, "Name_FindContext/512",
                              "real_time")
    if find_small <= 0:
        return fail("Name_FindContext/8 real_time is not positive")
    find_ratio = find_large / find_small
    if find_ratio > options.max_find_ratio:
        return fail(
            f"find_context_of 512/8-context time ratio {find_ratio:.2f}x "
            f"exceeds {options.max_find_ratio:.2f}x — the context index "
            f"degraded toward a linear scan (~64x)")

    cached = record_value(records, options.json, "Name_ClientResolveCached",
                          "real_time")
    fresh = record_value(records, options.json, "Name_ClientResolveFresh",
                         "real_time")
    if cached <= 0:
        return fail("Name_ClientResolveCached real_time is not positive")
    cache_speedup = fresh / cached
    if cache_speedup < options.min_cache_speedup:
        return fail(
            f"NameClient fresh/cached resolve ratio {cache_speedup:.2f}x is "
            f"below the {options.min_cache_speedup:.2f}x floor — the "
            f"resolve cache stopped paying for itself")
    print(f"check_bench_json: OK: naming find-context 512/8 "
          f"{find_ratio:.2f}x (cap {options.max_find_ratio:.2f}x), "
          f"resolve fresh/cached {cache_speedup:.2f}x "
          f"(floor {options.min_cache_speedup:.2f}x)")
    return 0


def check_fastpath(options: argparse.Namespace) -> int:
    fresh = load_records(options.json)
    base = load_records(options.baseline)
    fresh_speedup = record_value(fresh, options.json,
                                 "invoke_fastpath/speedup",
                                 "cached_over_uncached")
    base_speedup = record_value(base, options.baseline,
                                "invoke_fastpath/speedup",
                                "cached_over_uncached")
    floor = base_speedup * (1.0 - options.tolerance)
    if fresh_speedup < floor:
        return fail(
            f"fastpath cached/uncached speedup {fresh_speedup:.2f}x fell "
            f"below {floor:.2f}x (baseline {base_speedup:.2f}x minus "
            f"{options.tolerance:.0%} tolerance) — the cached arm "
            f"regressed relative to the uncached arm")
    print(f"check_bench_json: OK: fastpath cached/uncached "
          f"{fresh_speedup:.2f}x vs baseline {base_speedup:.2f}x "
          f"(floor {floor:.2f}x)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)

    fanin = sub.add_parser("fanin", help="gate BENCH_fanin.json")
    fanin.add_argument("json", help="fanin bench JSON")
    fanin.add_argument("--min-speedup", type=float, default=2.0,
                       help="minimum reactor/blocking speedup "
                            "(default 2.0 — the smoke-run floor; full "
                            "runs target 10)")
    fanin.set_defaults(run=check_fanin)

    naming = sub.add_parser("naming", help="gate BENCH_naming.json")
    naming.add_argument("json", help="naming bench JSON")
    naming.add_argument("--max-find-ratio", type=float, default=8.0,
                        help="maximum find_context_of time ratio between "
                             "the 512- and 8-context arms (default 8.0; a "
                             "linear scan would be ~64)")
    naming.add_argument("--min-cache-speedup", type=float, default=3.0,
                        help="minimum fresh/cached resolve time ratio "
                             "(default 3.0)")
    naming.set_defaults(run=check_naming)

    fastpath = sub.add_parser("fastpath", help="gate BENCH_fastpath.json")
    fastpath.add_argument("json", help="freshly produced fastpath JSON")
    fastpath.add_argument("baseline", help="committed baseline JSON")
    fastpath.add_argument("--tolerance", type=float, default=0.05,
                          help="allowed relative speedup loss "
                               "(default 0.05 = 5%%)")
    fastpath.set_defaults(run=check_fastpath)

    options = parser.parse_args()
    return options.run(options)


if __name__ == "__main__":
    sys.exit(main())
