#!/usr/bin/env python3
"""Validate a Prometheus text-exposition payload from the ohpx exporter.

Checks (all hard failures):
  - every non-comment line parses as `name[{labels}] value`
  - every series is preceded by a `# TYPE` declaration for its family
  - each family is declared (`# TYPE`) exactly once
  - counter families end in `_total`; summary series are the family name
    plus optional `_sum`/`_count`
  - no duplicate (series name, label set) pairs
  - every family named via --require is present (declared, even if it has
    zero series — gauge families like ohpx_breaker_state may be empty)

Usage:
  check_metrics_text.py exposition.txt \
      --require ohpx_reactor_loop_lag_us --require ohpx_breaker_state
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

FAMILY_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SERIES_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[^\s]+)$")
LABEL_RE = re.compile(r'\s*([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"\s*'
                      r"(?:,|$)")
VALUE_RE = re.compile(r"^[+-]?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|"
                      r"\d*\.\d+(?:[eE][+-]?\d+)?|Inf|NaN)$")


def parse_labels(text: str, errors: list, lineno: int) -> tuple:
    inner = text[1:-1].strip()
    if not inner:
        return ()
    labels = []
    pos = 0
    while pos < len(inner):
        match = LABEL_RE.match(inner, pos)
        if match is None:
            errors.append(f"line {lineno}: malformed label set {text!r}")
            return tuple(labels)
        labels.append((match.group(1), match.group(2)))
        pos = match.end()
    return tuple(sorted(labels))


def family_of(series_name: str, families: dict) -> str | None:
    """The declared family a series belongs to, or None."""
    if series_name in families:
        return series_name
    for suffix in ("_sum", "_count"):
        if series_name.endswith(suffix) and series_name[:-len(suffix)] in \
                families:
            return series_name[:-len(suffix)]
    return None


def check(text: str, required: list) -> list:
    errors: list = []
    families: dict = {}       # family -> type
    seen_series: set = set()  # (series name, labelset)

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {lineno}: malformed TYPE line: {line!r}")
                continue
            _, _, family, metric_type = parts
            if not FAMILY_RE.match(family):
                errors.append(
                    f"line {lineno}: bad family name {family!r}")
                continue
            if metric_type not in ("counter", "gauge", "summary",
                                   "histogram", "untyped"):
                errors.append(
                    f"line {lineno}: unknown metric type {metric_type!r} "
                    f"for {family}")
            if family in families:
                errors.append(
                    f"line {lineno}: family {family} declared twice")
            families[family] = metric_type
            if metric_type == "counter" and not family.endswith("_total"):
                errors.append(
                    f"line {lineno}: counter family {family} must end in "
                    "_total")
            continue
        if line.startswith("#"):
            continue  # HELP or comment

        match = SERIES_RE.match(line)
        if match is None:
            errors.append(f"line {lineno}: unparseable series line: {line!r}")
            continue
        name = match.group("name")
        family = family_of(name, families)
        if family is None:
            errors.append(
                f"line {lineno}: series {name} has no preceding # TYPE "
                "declaration")
            continue
        if name != family and families[family] != "summary":
            errors.append(
                f"line {lineno}: series {name} uses _sum/_count but "
                f"{family} is a {families[family]}, not a summary")
        labels = parse_labels(match.group("labels") or "{}", errors, lineno)
        key = (name, labels)
        if key in seen_series:
            errors.append(
                f"line {lineno}: duplicate series {name}{dict(labels)}")
        seen_series.add(key)
        if not VALUE_RE.match(match.group("value")):
            errors.append(
                f"line {lineno}: unparseable value "
                f"{match.group('value')!r} for {name}")

    for family in required:
        if family not in families:
            errors.append(f"required family {family} is missing")

    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", type=Path,
                        help="exposition payload to validate")
    parser.add_argument("--require", action="append", default=[],
                        metavar="FAMILY",
                        help="fail unless this family is declared "
                             "(repeatable)")
    options = parser.parse_args()

    text = options.file.read_text(encoding="utf-8", errors="replace")
    errors = check(text, options.require)
    if errors:
        for error in errors:
            print(f"check-metrics-text: {error}")
        print(f"check-metrics-text: FAIL ({len(errors)} error(s))")
        return 1
    series = sum(1 for line in text.splitlines()
                 if line.strip() and not line.startswith("#"))
    print(f"check-metrics-text: OK ({series} series, "
          f"{len(options.require)} required families present)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
