#!/usr/bin/env python3
"""check_trace_json: validate a Chrome trace_event export from ohpx::trace.

Checks:
  1. the file is valid JSON with a `traceEvents` list
  2. every event carries the expected fields (name, ph, ts, args with
     trace/span/parent ids); complete events ("X") also carry dur >= 0
  3. event timestamps are monotonically non-decreasing in file order
     (the exporter sorts by start time)
  4. every span's parent either is the root sentinel (all zeros) or exists
     as another event's span id
  5. at least one trace id groups both a client span (cat "invoke") and a
     server span (cat "server") — the cross-process propagation invariant

Usage:  python3 tools/check_trace_json.py TRACE.json [--allow-no-server]
"""

from __future__ import annotations

import argparse
import json
import sys

ROOT_PARENT = "0" * 16


def fail(message: str) -> int:
    print(f"check_trace_json: FAIL: {message}")
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument("--allow-no-server", action="store_true",
                        help="skip the client+server same-trace check "
                             "(single-sided captures)")
    options = parser.parse_args()

    try:
        with open(options.trace, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return fail(f"cannot parse {options.trace}: {error}")

    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail("no traceEvents array (or it is empty)")

    span_ids = set()
    last_ts = None
    cats_by_trace: dict[str, set] = {}
    for index, event in enumerate(events):
        where = f"event #{index}"
        for field in ("name", "ph", "ts", "args"):
            if field not in event:
                return fail(f"{where} lacks `{field}`")
        if event["ph"] not in ("X", "i"):
            return fail(f"{where} has unexpected phase {event['ph']!r}")
        if event["ph"] == "X" and event.get("dur", -1) < 0:
            return fail(f"{where} is a complete event without dur >= 0")
        if last_ts is not None and event["ts"] < last_ts:
            return fail(f"{where} breaks timestamp monotonicity "
                        f"({event['ts']} < {last_ts})")
        last_ts = event["ts"]
        args = event["args"]
        for field in ("trace", "span", "parent"):
            if field not in args:
                return fail(f"{where} args lack `{field}`")
        span_ids.add(args["span"])
        cats_by_trace.setdefault(args["trace"], set()).add(
            event.get("cat", ""))

    orphans = []
    for index, event in enumerate(events):
        parent = event["args"]["parent"]
        if parent != ROOT_PARENT and parent not in span_ids:
            orphans.append(f"event #{index} ({event['name']}) parent "
                           f"{parent}")
    if orphans:
        return fail("spans with missing parents:\n  " + "\n  ".join(orphans))

    if not options.allow_no_server:
        joined = [trace for trace, cats in cats_by_trace.items()
                  if "invoke" in cats and "server" in cats]
        if not joined:
            return fail("no trace id groups both a client (invoke) and a "
                        "server span — wire propagation is broken")

    print(f"check_trace_json: OK ({len(events)} events, "
          f"{len(cats_by_trace)} trace ids)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
