#!/usr/bin/env python3
"""ohpx-lint-ast: the AST tier of ohpx-lint (concurrency + consistency).

Where tools/ohpx_lint.py is a line-oriented regex tier, this tier reasons
about scopes and cross-file contracts.  It prefers a real Clang AST: when
the `clang.cindex` bindings and a libclang are available (CI installs
both), every translation unit listed in the exported
compile_commands.json is parsed and walked.  Without libclang (e.g. a
GCC-only dev box) a conservative lexer engine checks the same rules from
stripped source text, so the tier is runnable — and self-testable —
everywhere.

Rules:

  naked-mutex        std::mutex / std::shared_mutex / std::lock_guard /
                     std::unique_lock / std::shared_lock /
                     std::scoped_lock are banned outside src/ohpx/sync/.
                     The std guards carry no thread-safety annotations
                     (invisible to -Wthread-safety) and bypass the
                     lock-order validator; declare sync::Mutex and lock
                     through sync::LockGuard / sync::UniqueLock instead.
  lock-across-send   no ohpx::sync guard may be in scope at a blocking
                     transport send (Channel::roundtrip) in the layers
                     above transport.  A lock held across a network
                     roundtrip serializes the caller on a peer's latency
                     — copy what you need under the lock, drop it, then
                     send.  src/ohpx/transport/ itself is exempt: a
                     channel serializing its own fd (TcpChannel::io_mutex_)
                     is that lock's entire point.
  blocking-socket    global-scope blocking socket syscalls (::connect,
                     ::send, ::recv, ::read, ::write, ::accept, ::poll,
                     ::select, ::writev, ::sendmsg, ...) are banned
                     outside src/ohpx/transport/.  Everything above the
                     transport layer talks through Reactor::submit or a
                     Channel, which own nonblocking I/O, fd lifecycle
                     and the inflight-window contract; a raw blocking
                     syscall parks a caller thread the reactor cannot
                     see.
  error-consistency  cross-file contracts that no single TU sees:
                       * every ErrorCode enumerator has a name in
                         to_string (src/ohpx/common/error.cpp) and an
                         explicit verdict in is_retryable
                         (src/ohpx/resilience/retry.cpp) — whose switch
                         must stay exhaustive, with no `default:`
                       * every span/event name literal in src/ is
                         registered in src/ohpx/trace/span_names.hpp and
                         every registered name still has a call site

Usage:
  python3 tools/ohpx_lint_ast.py [--root R] [--compile-commands P]
                                 [--engine auto|libclang|regex]
  python3 tools/ohpx_lint_ast.py --self-test   # verify both engines
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from ohpx_lint import strip_comments_and_strings  # noqa: E402

# ---------------------------------------------------------------------------
# shared vocabulary

BANNED_STD_SYNC = (
    "mutex", "timed_mutex", "recursive_mutex", "recursive_timed_mutex",
    "shared_mutex", "shared_timed_mutex",
    "lock_guard", "unique_lock", "shared_lock", "scoped_lock",
)
SYNC_DIR = Path("src/ohpx/sync")
TRANSPORT_DIR = Path("src/ohpx/transport")
GUARD_RE = re.compile(r"\bsync\s*::\s*(LockGuard|UniqueLock|SharedLock)\b")
ROUNDTRIP_RE = re.compile(r"\broundtrip\s*\(")


def is_under(path: Path, root: Path, subdir: Path) -> bool:
    try:
        return path.resolve().is_relative_to((root / subdir).resolve())
    except (OSError, ValueError):
        return False


class Findings:
    """Deduplicated, deterministically ordered violation list."""

    def __init__(self, root: Path):
        self.root = root
        self._seen: set[tuple] = set()
        self.violations: list[str] = []

    def report(self, path: Path, line: int, rule: str, message: str) -> None:
        try:
            shown = path.resolve().relative_to(self.root.resolve())
        except ValueError:
            shown = path
        key = (str(shown), line, rule, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.violations.append(f"{shown}:{line}: [{rule}] {message}")

    def sorted(self) -> list[str]:
        return sorted(self.violations)


# ---------------------------------------------------------------------------
# engine: regex/lexer fallback

class RegexEngine:
    """Scope-approximating lexer over stripped source text.

    Tracks brace depth to model guard lifetimes: good enough to catch a
    guard in scope at a roundtrip call, without a compiler."""

    name = "regex"

    def __init__(self, root: Path):
        self.root = root

    def source_files(self) -> list[Path]:
        src = self.root / "src"
        return sorted(src.rglob("*.hpp")) + sorted(src.rglob("*.cpp"))

    NAKED_RE = re.compile(
        r"\bstd\s*::\s*(" + "|".join(BANNED_STD_SYNC) + r")\b")

    def check_naked_mutex(self, findings: Findings) -> None:
        for source in self.source_files():
            if is_under(source, self.root, SYNC_DIR):
                continue
            clean = strip_comments_and_strings(
                source.read_text(encoding="utf-8", errors="replace"))
            for lineno, line in enumerate(clean.splitlines(), 1):
                for match in self.NAKED_RE.finditer(line):
                    findings.report(
                        source, lineno, "naked-mutex",
                        f"std::{match.group(1)} outside ohpx::sync — "
                        "declare a named sync::Mutex and lock through "
                        "sync::LockGuard/UniqueLock (annotated + "
                        "order-validated)")

    def check_lock_across_send(self, findings: Findings) -> None:
        for source in self.source_files():
            if is_under(source, self.root, TRANSPORT_DIR):
                continue
            if is_under(source, self.root, SYNC_DIR):
                continue
            clean = strip_comments_and_strings(
                source.read_text(encoding="utf-8", errors="replace"))
            depth = 0
            guards: list[tuple[int, int]] = []  # (brace depth, line)
            # One linear pass over braces, guard declarations and
            # roundtrip calls, in source order.
            events = []
            for match in re.finditer(r"[{}]", clean):
                events.append((match.start(), match.group(0), None))
            for match in GUARD_RE.finditer(clean):
                events.append((match.start(), "guard", None))
            for match in ROUNDTRIP_RE.finditer(clean):
                events.append((match.start(), "roundtrip", None))
            events.sort()
            for offset, kind, _ in events:
                lineno = clean.count("\n", 0, offset) + 1
                if kind == "{":
                    depth += 1
                elif kind == "}":
                    depth -= 1
                    while guards and guards[-1][0] > depth:
                        guards.pop()
                elif kind == "guard":
                    guards.append((depth, lineno))
                elif kind == "roundtrip" and guards:
                    findings.report(
                        source, lineno, "lock-across-send",
                        f"blocking roundtrip() with a sync guard in scope "
                        f"(acquired line {guards[-1][1]}) — copy what you "
                        "need, drop the lock, then send")


# ---------------------------------------------------------------------------
# engine: libclang

def load_cindex():
    """Returns a usable clang.cindex module, or None."""
    try:
        from clang import cindex
    except ImportError:
        return None
    candidates = [None, "libclang.so", "libclang-19.so.1", "libclang-18.so.1",
                  "libclang-17.so.1", "libclang-16.so.1", "libclang-15.so.1",
                  "libclang-14.so.1"]
    for library in candidates:
        try:
            if library is not None:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(library)
            cindex.Index.create()
            return cindex
        except Exception:  # noqa: BLE001 — try the next soname
            continue
    return None


class LibclangEngine:
    """Parses every TU in compile_commands.json and walks real ASTs."""

    name = "libclang"

    def __init__(self, root: Path, cindex, compile_commands: Path):
        self.root = root
        self.cindex = cindex
        self.commands = self._load_commands(compile_commands)
        self.index = cindex.Index.create()
        self._tus: list = []

    @staticmethod
    def _load_commands(path: Path) -> list[tuple[Path, list[str]]]:
        entries = json.loads(path.read_text(encoding="utf-8"))
        commands = []
        for entry in entries:
            file = Path(entry["file"])
            if "command" in entry:
                argv = entry["command"].split()
            else:
                argv = list(entry.get("arguments", []))
            # Keep only flags libclang understands and needs: includes,
            # defines, standard.  Drop the compiler, -c/-o pairs, and
            # warning flags.
            args, skip = [], False
            for token in argv[1:]:
                if skip:
                    skip = False
                    continue
                if token in ("-c", "-o"):
                    skip = token == "-o"
                    continue
                if token.startswith(("-I", "-D", "-std=", "-isystem")):
                    args.append(token)
            commands.append((file, args))
        return commands

    def _parse_all(self) -> list:
        if self._tus:
            return self._tus
        src = (self.root / "src").resolve()
        for file, args in self.commands:
            try:
                if not file.resolve().is_relative_to(src):
                    continue
            except (OSError, ValueError):
                continue
            tu = self.index.parse(str(file), args=args)
            self._tus.append(tu)
        return self._tus

    def _in_scope(self, location) -> Path | None:
        """The repo-src path of a cursor location, or None to skip."""
        if location.file is None:
            return None
        path = Path(location.file.name)
        try:
            if not path.resolve().is_relative_to(
                    (self.root / "src").resolve()):
                return None
        except (OSError, ValueError):
            return None
        return path

    def check_naked_mutex(self, findings: Findings) -> None:
        kinds = self.cindex.CursorKind
        interesting = (kinds.TYPE_REF, kinds.TEMPLATE_REF,
                       kinds.DECL_REF_EXPR)
        for tu in self._parse_all():
            for cursor in tu.cursor.walk_preorder():
                if cursor.kind not in interesting:
                    continue
                path = self._in_scope(cursor.location)
                if path is None or is_under(path, self.root, SYNC_DIR):
                    continue
                referenced = cursor.referenced
                if referenced is None:
                    continue
                if referenced.spelling not in BANNED_STD_SYNC:
                    continue
                parent = referenced.semantic_parent
                if parent is None or parent.spelling != "std":
                    continue
                findings.report(
                    path, cursor.location.line, "naked-mutex",
                    f"std::{referenced.spelling} outside ohpx::sync — "
                    "declare a named sync::Mutex and lock through "
                    "sync::LockGuard/UniqueLock (annotated + "
                    "order-validated)")

    def check_lock_across_send(self, findings: Findings) -> None:
        kinds = self.cindex.CursorKind
        for tu in self._parse_all():
            for cursor in tu.cursor.walk_preorder():
                if cursor.kind not in (kinds.CXX_METHOD, kinds.FUNCTION_DECL,
                                       kinds.CONSTRUCTOR, kinds.DESTRUCTOR,
                                       kinds.LAMBDA_EXPR):
                    continue
                path = self._in_scope(cursor.location)
                if (path is None
                        or is_under(path, self.root, TRANSPORT_DIR)
                        or is_under(path, self.root, SYNC_DIR)):
                    continue
                for body in cursor.get_children():
                    if body.kind == kinds.COMPOUND_STMT:
                        self._walk_scope(body, [], path, findings)

    def _walk_scope(self, node, guards: list[int], path: Path,
                    findings: Findings) -> None:
        kinds = self.cindex.CursorKind
        for child in node.get_children():
            if child.kind == kinds.DECL_STMT:
                for decl in child.get_children():
                    if (decl.kind == kinds.VAR_DECL
                            and GUARD_RE.search(decl.type.spelling or "")):
                        guards.append(decl.location.line)
                continue
            if (child.kind == kinds.CALL_EXPR
                    and child.spelling == "roundtrip" and guards):
                findings.report(
                    path, child.location.line, "lock-across-send",
                    f"blocking roundtrip() with a sync guard in scope "
                    f"(acquired line {guards[-1]}) — copy what you need, "
                    "drop the lock, then send")
            # A nested compound statement bounds the lifetime of guards
            # declared inside it; other children share this scope.
            if child.kind == kinds.COMPOUND_STMT:
                self._walk_scope(child, list(guards), path, findings)
            else:
                self._walk_scope(child, guards, path, findings)


# ---------------------------------------------------------------------------
# blocking-socket (engine-independent: a global-qualified call is
# unambiguous in stripped text, no AST needed)

BLOCKING_SOCKET_CALLS = (
    "socket", "bind", "listen",
    "connect", "accept", "accept4",
    "send", "sendto", "sendmsg", "recv", "recvfrom", "recvmsg",
    "read", "write", "readv", "writev",
    "poll", "ppoll", "select", "pselect",
)
# `::name(` where the `::` is global scope — not `Foo::read(` (preceded by
# an identifier or template argument close) and not `ohpx::send(`.
BLOCKING_SOCKET_RE = re.compile(
    r"(?<![\w>])::\s*(" + "|".join(BLOCKING_SOCKET_CALLS) + r")\s*\(")


# ---------------------------------------------------------------------------
# error-consistency (engine-independent: the contract is cross-file text)

SPAN_CALL_RE = re.compile(r"\bSpan\s+\w+\s*\(")
EVENT_CALL_RE = re.compile(r"\b(?:trace\s*::\s*)?event\s*\(")
NAME_LITERAL_RE = re.compile(r'"([a-z0-9_.]+)"')

# Metric registry call sites (handles, convenience wrappers, and the RAII
# timer in both its named-variable and temporary spellings).
METRIC_CALL_RE = re.compile(
    r"\b(?:counter_handle|latency_handle|increment|record_latency)\s*\(|"
    r"\bScopedLatency(?:\s+\w+)?\s*\(")
# Metric names are dotted lowercase ("rmi.calls"); requiring a dot keeps
# ordinary string arguments from tripping the rule.
METRIC_LITERAL_RE = re.compile(r'"([a-z0-9_]+(?:\.[a-z0-9_.]+)+)"')


def _switch_cases(text: str, function_re: re.Pattern) -> tuple[set, bool,
                                                               int]:
    """(case labels, has default, body start line) of the first switch in
    the function matched by `function_re`; empty if not found."""
    match = function_re.search(text)
    if not match:
        return set(), False, 0
    # The function body: brace-balance from the first `{` after the match.
    start = text.find("{", match.end())
    if start == -1:
        return set(), False, 0
    depth, i = 1, start + 1
    while i < len(text) and depth > 0:
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
        i += 1
    body = text[start:i]
    cases = set(re.findall(r"\bcase\s+ErrorCode\s*::\s*(\w+)", body))
    has_default = re.search(r"\bdefault\s*:", body) is not None
    return cases, has_default, text.count("\n", 0, start) + 1


class ConsistencyChecker:
    ERROR_HPP = Path("src/ohpx/common/error.hpp")
    ERROR_CPP = Path("src/ohpx/common/error.cpp")
    RETRY_CPP = Path("src/ohpx/resilience/retry.cpp")
    SPAN_NAMES_HPP = Path("src/ohpx/trace/span_names.hpp")

    def __init__(self, root: Path):
        self.root = root

    def _read(self, rel: Path) -> str:
        path = self.root / rel
        if not path.is_file():
            return ""
        return strip_comments_and_strings(
            path.read_text(encoding="utf-8", errors="replace"))

    def _read_raw(self, rel: Path) -> str:
        path = self.root / rel
        return (path.read_text(encoding="utf-8", errors="replace")
                if path.is_file() else "")

    def check_error_codes(self, findings: Findings) -> None:
        hpp = self._read(self.ERROR_HPP)
        enum_match = re.search(
            r"enum\s+class\s+ErrorCode[^{]*\{(.*?)\};", hpp, re.DOTALL)
        if not enum_match:
            return
        enumerators = re.findall(r"\b([a-z_][a-z0-9_]*)\s*=\s*\d+",
                                 enum_match.group(1))

        to_string_cases, _, to_string_line = _switch_cases(
            self._read(self.ERROR_CPP),
            re.compile(r"to_string\s*\(\s*ErrorCode\s+\w+\s*\)"))
        retry_cases, retry_default, retry_line = _switch_cases(
            self._read(self.RETRY_CPP),
            re.compile(r"\bis_retryable\s*\(\s*ErrorCode\s+\w+\s*\)"))

        for enumerator in enumerators:
            if to_string_cases and enumerator not in to_string_cases:
                findings.report(
                    self.root / self.ERROR_CPP, to_string_line,
                    "error-consistency",
                    f"ErrorCode::{enumerator} has no name in to_string()")
            if retry_cases and enumerator not in retry_cases:
                findings.report(
                    self.root / self.RETRY_CPP, retry_line,
                    "error-consistency",
                    f"ErrorCode::{enumerator} has no explicit verdict in "
                    "is_retryable() — classify it (and say why)")
        if retry_cases and retry_default:
            findings.report(
                self.root / self.RETRY_CPP, retry_line, "error-consistency",
                "is_retryable() must stay an exhaustive switch with no "
                "`default:` — a default silently classifies future codes")

    def _registered_span_names(self) -> dict[str, int]:
        raw = self._read_raw(self.SPAN_NAMES_HPP)
        names: dict[str, int] = {}
        in_array = False
        for lineno, line in enumerate(raw.splitlines(), 1):
            if "kRegistered[]" in line:
                in_array = True
            if in_array:
                for match in NAME_LITERAL_RE.finditer(line):
                    names.setdefault(match.group(1), lineno)
                if "};" in line:
                    break
        return names

    def _span_call_sites(self) -> dict[str, tuple[Path, int]]:
        sites: dict[str, tuple[Path, int]] = {}
        src = self.root / "src"
        for source in sorted(src.rglob("*.hpp")) + sorted(src.rglob("*.cpp")):
            rel = source.resolve().relative_to(self.root.resolve())
            if rel == self.SPAN_NAMES_HPP or rel.parts[:3] == (
                    "src", "ohpx", "trace"):
                continue  # the registry + the trace runtime itself
            raw = source.read_text(encoding="utf-8", errors="replace")
            # Strip comments but keep strings: the names ARE strings.
            clean = re.sub(r"//[^\n]*", "", raw)
            for pattern, arg_index in ((SPAN_CALL_RE, 1),
                                       (EVENT_CALL_RE, 0)):
                for match in pattern.finditer(clean):
                    args = self._call_args(clean, match.end())
                    if arg_index >= len(args):
                        continue
                    literal = NAME_LITERAL_RE.search(args[arg_index])
                    if literal is None:
                        continue
                    lineno = clean.count("\n", 0, match.start()) + 1
                    sites.setdefault(literal.group(1), (source, lineno))
        return sites

    @staticmethod
    def _call_args(text: str, start: int) -> list[str]:
        depth, args, current = 1, [], []
        i = start
        while i < len(text) and depth > 0:
            c = text[i]
            if c in "([{":
                depth += 1
                current.append(c)
            elif c in ")]}":
                depth -= 1
                if depth > 0:
                    current.append(c)
            elif c == "," and depth == 1:
                args.append("".join(current))
                current = []
            else:
                current.append(c)
            i += 1
        args.append("".join(current))
        return args

    def check_blocking_sockets(self, findings: Findings) -> None:
        src = self.root / "src"
        for source in sorted(src.rglob("*.hpp")) + sorted(src.rglob("*.cpp")):
            if is_under(source, self.root, TRANSPORT_DIR):
                continue  # the transport layer owns its fds
            clean = strip_comments_and_strings(
                source.read_text(encoding="utf-8", errors="replace"))
            for lineno, line in enumerate(clean.splitlines(), 1):
                for match in BLOCKING_SOCKET_RE.finditer(line):
                    findings.report(
                        source, lineno, "blocking-socket",
                        f"::{match.group(1)}() outside src/ohpx/transport/ "
                        "— socket I/O and accepting listeners belong to "
                        "the transport layer (Reactor::submit for async, "
                        "Channel for the sync bearer, TcpListener for "
                        "accepting sockets); a raw syscall parks a thread "
                        "or owns an fd the reactor cannot see")

    def check_metric_names(self, findings: Findings) -> None:
        """Every metric-registry call site in src/ outside src/ohpx/metrics/
        must reach its name through metric_names.hpp — a raw dotted string
        literal at counter_handle()/latency_handle()/increment()/
        record_latency()/ScopedLatency drifts out of the exporter's,
        ohpx-top's and the tests' shared vocabulary silently."""
        src = self.root / "src"
        for source in sorted(src.rglob("*.hpp")) + sorted(src.rglob("*.cpp")):
            rel = source.resolve().relative_to(self.root.resolve())
            if rel.parts[:3] == ("src", "ohpx", "metrics"):
                continue  # the registry + metric_names.hpp own the names
            raw = source.read_text(encoding="utf-8", errors="replace")
            # Strip comments but keep strings: the names ARE strings.
            clean = re.sub(r"//[^\n]*", "", raw)
            for match in METRIC_CALL_RE.finditer(clean):
                for arg in self._call_args(clean, match.end()):
                    literal = METRIC_LITERAL_RE.search(arg)
                    if literal is None:
                        continue
                    lineno = clean.count("\n", 0, match.start()) + 1
                    findings.report(
                        source, lineno, "metric-names",
                        f'raw metric name "{literal.group(1)}" at a registry '
                        "call site — route it through "
                        "src/ohpx/metrics/metric_names.hpp (a names:: "
                        "constant or derived-name builder) so the exporter, "
                        "ohpx-top and the tests share one vocabulary")

    def check_span_names(self, findings: Findings) -> None:
        registered = self._registered_span_names()
        if not registered:
            return
        sites = self._span_call_sites()
        for name, (path, lineno) in sorted(sites.items()):
            if name not in registered:
                findings.report(
                    path, lineno, "error-consistency",
                    f'span/event name "{name}" is not registered in '
                    "src/ohpx/trace/span_names.hpp — add it there (sorted) "
                    "in the same change")
        for name, lineno in sorted(registered.items()):
            if name not in sites:
                findings.report(
                    self.root / self.SPAN_NAMES_HPP, lineno,
                    "error-consistency",
                    f'registered span name "{name}" has no call site left '
                    "in src/ — remove it or restore the span")


# ---------------------------------------------------------------------------
# driver

def make_engine(root: Path, engine: str, compile_commands: Path):
    if engine in ("auto", "libclang"):
        cindex = load_cindex()
        if cindex is not None and compile_commands.is_file():
            return LibclangEngine(root, cindex, compile_commands)
        if engine == "libclang":
            missing = ("clang.cindex/libclang not available"
                       if cindex is None else
                       f"no compile_commands.json at {compile_commands}")
            print(f"ohpx-lint-ast: {missing}", file=sys.stderr)
            return None
    return RegexEngine(root)


def run(root: Path, engine_name: str, compile_commands: Path) -> int:
    engine = make_engine(root, engine_name, compile_commands)
    if engine is None:
        return 2
    findings = Findings(root)
    engine.check_naked_mutex(findings)
    engine.check_lock_across_send(findings)
    checker = ConsistencyChecker(root)
    checker.check_blocking_sockets(findings)
    checker.check_error_codes(findings)
    checker.check_span_names(findings)
    checker.check_metric_names(findings)
    for violation in findings.sorted():
        print(violation)
    if findings.violations:
        print(f"ohpx-lint-ast[{engine.name}]: "
              f"{len(findings.violations)} violation(s)")
        return 1
    print(f"ohpx-lint-ast[{engine.name}]: OK (5 rules clean)")
    return 0


# ---------------------------------------------------------------------------
# self-test

SYNC_MUTEX_HPP = """\
#pragma once
#include <mutex>
namespace ohpx::sync {
class Mutex {
 public:
  explicit Mutex(const char* name = "unnamed") : name_(name) {}
  void lock() { mutex_.lock(); }
  void unlock() { mutex_.unlock(); }
  const char* name() const { return name_; }
 private:
  std::mutex mutex_;
  const char* name_;
};
template <typename M = Mutex>
class LockGuard {
 public:
  explicit LockGuard(M& m) : m_(m) { m_.lock(); }
  ~LockGuard() { m_.unlock(); }
 private:
  M& m_;
};
template <typename M = Mutex>
class UniqueLock {
 public:
  explicit UniqueLock(M& m) : m_(m) { m_.lock(); }
  ~UniqueLock() { m_.unlock(); }
 private:
  M& m_;
};
}  // namespace ohpx::sync
"""

CHANNEL_HPP = """\
#pragma once
namespace ohpx::transport {
struct Buffer {};
class Channel {
 public:
  virtual ~Channel() = default;
  virtual Buffer roundtrip(const Buffer& request) = 0;
};
}  // namespace ohpx::transport
"""

CLEAN_ORB_CPP = """\
#include "ohpx/sync/mutex.hpp"
#include "ohpx/transport/channel.hpp"
namespace ohpx::trace {
struct Span { Span(int, const char*) {} };
void event(const char*, const char*);
}  // namespace ohpx::trace
namespace ohpx::orb {
class Caller {
 public:
  transport::Buffer call(transport::Channel& channel) {
    transport::Buffer request;
    {
      sync::LockGuard lock(mutex_);
      request = pending_;
    }  // guard dropped before the blocking send
    trace::Span span(0, "rmi.invoke");
    return channel.roundtrip(request);
  }
 private:
  sync::Mutex mutex_{"orb.caller"};
  transport::Buffer pending_;
};
}  // namespace ohpx::orb
"""

TRANSPORT_TCP_CPP = """\
#include "ohpx/sync/mutex.hpp"
#include "ohpx/transport/channel.hpp"
extern "C" long send(int, const void*, unsigned long, int);
namespace ohpx::transport {
class TcpChannel : public Channel {
 public:
  Buffer roundtrip(const Buffer& request) override {
    sync::LockGuard lock(io_mutex_);  // exempt: serializes this fd
    Buffer reply = request;
    ::send(fd_, &reply, sizeof(reply), 0);  // exempt: transport owns fds
    return reply;
  }
 private:
  sync::Mutex io_mutex_{"transport.tcp.io"};
  int fd_ = -1;
};
}  // namespace ohpx::transport
"""

ERROR_HPP = """\
#pragma once
namespace ohpx {
enum class ErrorCode : unsigned {
  ok = 0,
  transport_io = 202,
  deadline_exceeded = 800,
};
}  // namespace ohpx
"""

ERROR_CPP = """\
#include "ohpx/common/error.hpp"
namespace ohpx {
const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::ok: return "ok";
    case ErrorCode::transport_io: return "transport_io";
    case ErrorCode::deadline_exceeded: return "deadline_exceeded";
  }
  return "unknown";
}
}  // namespace ohpx
"""

RETRY_CPP = """\
#include "ohpx/common/error.hpp"
namespace ohpx::resilience {
bool is_retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::transport_io:
      return true;
    case ErrorCode::ok:
    case ErrorCode::deadline_exceeded:
      return false;
  }
  return false;
}
}  // namespace ohpx::resilience
"""

SPAN_NAMES_HPP_FIXTURE = """\
#pragma once
namespace ohpx::trace::names {
inline constexpr const char* kRegistered[] = {
    "rmi.invoke",
};
}  // namespace ohpx::trace::names
"""


def _make_tree(tmp: Path) -> Path:
    root = tmp
    files = {
        "src/ohpx/sync/mutex.hpp": SYNC_MUTEX_HPP,
        "src/ohpx/transport/channel.hpp": CHANNEL_HPP,
        "src/ohpx/transport/tcp.cpp": TRANSPORT_TCP_CPP,
        "src/ohpx/orb/caller.cpp": CLEAN_ORB_CPP,
        "src/ohpx/common/error.hpp": ERROR_HPP,
        "src/ohpx/common/error.cpp": ERROR_CPP,
        "src/ohpx/resilience/retry.cpp": RETRY_CPP,
        "src/ohpx/trace/span_names.hpp": SPAN_NAMES_HPP_FIXTURE,
    }
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    entries = [
        {"directory": str(root),
         "command": f"c++ -std=c++17 -I{root / 'src'} -c {root / rel}",
         "file": str(root / rel)}
        for rel in files if rel.endswith(".cpp")
    ]
    (root / "compile_commands.json").write_text(json.dumps(entries))
    return root


def _write_in(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


def _collect(root: Path, engine) -> list[str]:
    findings = Findings(root)
    engine.check_naked_mutex(findings)
    engine.check_lock_across_send(findings)
    checker = ConsistencyChecker(root)
    checker.check_blocking_sockets(findings)
    checker.check_error_codes(findings)
    checker.check_span_names(findings)
    checker.check_metric_names(findings)
    return findings.sorted()


def self_test() -> int:
    failures: list[str] = []

    def expect(condition: bool, label: str) -> None:
        if not condition:
            failures.append(label)

    cindex = load_cindex()
    engine_factories = [
        ("regex", lambda root: RegexEngine(root)),
    ]
    if cindex is not None:
        engine_factories.append(
            ("libclang",
             lambda root: LibclangEngine(
                 root, cindex, root / "compile_commands.json")))

    injections = [
        ("naked-mutex", "src/ohpx/orb/naked.cpp",
         "#include <mutex>\n"
         "namespace ohpx::orb {\n"
         "class Table {\n"
         "  mutable std::mutex mutex_;\n"
         "};\n"
         "}  // namespace ohpx::orb\n"),
        ("naked-mutex", "src/ohpx/orb/guarded.cpp",
         "#include <mutex>\n"
         "namespace ohpx::orb {\n"
         "std::mutex g_m;\n"
         "void f() { std::lock_guard<std::mutex> lock(g_m); }\n"
         "}  // namespace ohpx::orb\n"),
        ("lock-across-send", "src/ohpx/orb/heldsend.cpp",
         '#include "ohpx/sync/mutex.hpp"\n'
         '#include "ohpx/transport/channel.hpp"\n'
         "namespace ohpx::orb {\n"
         "class Bad {\n"
         " public:\n"
         "  transport::Buffer call(transport::Channel& channel) {\n"
         "    sync::LockGuard lock(mutex_);\n"
         "    return channel.roundtrip(pending_);  // lock still held\n"
         "  }\n"
         " private:\n"
         '  sync::Mutex mutex_{"orb.bad"};\n'
         "  transport::Buffer pending_;\n"
         "};\n"
         "}  // namespace ohpx::orb\n"),
        ("lock-across-send", "src/ohpx/protocol/nested.cpp",
         '#include "ohpx/sync/mutex.hpp"\n'
         '#include "ohpx/transport/channel.hpp"\n'
         "namespace ohpx::proto {\n"
         "class Bad {\n"
         " public:\n"
         "  void call(transport::Channel& channel) {\n"
         "    sync::UniqueLock lock(mutex_);\n"
         "    if (dirty_) {\n"
         "      channel.roundtrip(pending_);  // outer guard in scope\n"
         "    }\n"
         "  }\n"
         " private:\n"
         '  sync::Mutex mutex_{"proto.bad"};\n'
         "  bool dirty_ = false;\n"
         "  transport::Buffer pending_;\n"
         "};\n"
         "}  // namespace ohpx::proto\n"),
    ]

    consistency_injections = [
        ("missing to_string + is_retryable entries",
         "src/ohpx/common/error.hpp",
         ERROR_HPP.replace("  deadline_exceeded = 800,",
                           "  deadline_exceeded = 800,\n"
                           "  brand_new_code = 900,"),
         ["has no name in to_string",
          "has no explicit verdict in is_retryable"]),
        ("default in is_retryable",
         "src/ohpx/resilience/retry.cpp",
         RETRY_CPP.replace("    case ErrorCode::ok:\n"
                           "    case ErrorCode::deadline_exceeded:\n"
                           "      return false;\n",
                           "    default:\n      return false;\n"),
         ["no explicit verdict", "no `default:`"]),
        ("unregistered span name",
         "src/ohpx/orb/newspan.cpp",
         "namespace ohpx::trace { struct Span { Span(int, const char*) {} };"
         " }\n"
         "namespace ohpx::orb {\n"
         'void f() { trace::Span span(0, "orb.mystery"); }\n'
         "}  // namespace ohpx::orb\n",
         ['"orb.mystery" is not registered']),
        ("unused registered span name",
         "src/ohpx/trace/span_names.hpp",
         SPAN_NAMES_HPP_FIXTURE.replace(
             '    "rmi.invoke",',
             '    "rmi.invoke",\n    "orb.ghost",'),
         ['"orb.ghost" has no call site']),
        ("blocking socket syscall above transport",
         "src/ohpx/protocol/rawsock.cpp",
         'extern "C" long send(int, const void*, unsigned long, int);\n'
         'extern "C" int connect(int, const void*, unsigned int);\n'
         "namespace ohpx::proto {\n"
         "void leak(int fd, const void* buf, unsigned long len) {\n"
         "  ::connect(fd, buf, 0);\n"
         "  ::send(fd, buf, len, 0);\n"
         "}\n"
         "}  // namespace ohpx::proto\n",
         ["[blocking-socket]"]),
        ("qualified read() is not a syscall",
         "src/ohpx/orb/reader.cpp",
         "namespace ohpx::orb {\n"
         "struct Codec { long read(void*, unsigned long); };\n"
         "void f(Codec& codec, void* buf) { codec.Codec::read(buf, 1); }\n"
         "}  // namespace ohpx::orb\n",
         []),  # member-qualified call must NOT trip the rule
        ("accepting-socket syscalls above transport",
         "src/ohpx/naming/rawlisten.cpp",
         'extern "C" int socket(int, int, int);\n'
         'extern "C" int bind(int, const void*, unsigned int);\n'
         'extern "C" int listen(int, int);\n'
         "namespace ohpx::naming {\n"
         "int serve(const void* addr) {\n"
         "  const int fd = ::socket(2, 1, 0);\n"
         "  ::bind(fd, addr, 16);\n"
         "  ::listen(fd, 8);\n"
         "  return fd;\n"
         "}\n"
         "}  // namespace ohpx::naming\n",
         ["[blocking-socket]"]),
        ("accepting-socket syscalls inside transport are sanctioned",
         "src/ohpx/transport/listener_ok.cpp",
         'extern "C" int socket(int, int, int);\n'
         'extern "C" int listen(int, int);\n'
         "namespace ohpx::transport {\n"
         "int open_listener() {\n"
         "  const int fd = ::socket(2, 1, 0);\n"
         "  ::listen(fd, 8);\n"
         "  return fd;\n"
         "}\n"
         "}  // namespace ohpx::transport\n",
         []),  # the transport layer owns its fds
        ("std::bind and member bind() are not the syscall",
         "src/ohpx/orb/binder.cpp",
         "namespace std { template <class F> F bind(F f) { return f; } }\n"
         "namespace ohpx::orb {\n"
         "struct Directory { void bind(int); };\n"
         "void f(Directory& directory) {\n"
         "  directory.bind(1);\n"
         "  (void)std::bind(0);\n"
         "}\n"
         "}  // namespace ohpx::orb\n",
         []),  # only global-scope ::bind( is the syscall
        ("raw metric name at a registry call site",
         "src/ohpx/orb/metered.cpp",
         "namespace ohpx::metrics {\n"
         "struct MetricsRegistry {\n"
         "  static MetricsRegistry& global();\n"
         "  unsigned long* counter_handle(const char*);\n"
         "};\n"
         "}  // namespace ohpx::metrics\n"
         "namespace ohpx::orb {\n"
         "void f() {\n"
         '  metrics::MetricsRegistry::global().counter_handle("rmi.calls");\n'
         "}\n"
         "}  // namespace ohpx::orb\n",
         ["[metric-names]"]),
        ("metric name routed through names:: stays clean",
         "src/ohpx/orb/metered_ok.cpp",
         "namespace ohpx::metrics::names {\n"
         "inline constexpr const char* kRmiCalls = \"rmi.calls\";\n"
         "}  // namespace ohpx::metrics::names\n"
         "namespace ohpx::metrics {\n"
         "struct MetricsRegistry {\n"
         "  static MetricsRegistry& global();\n"
         "  unsigned long* counter_handle(const char*);\n"
         "};\n"
         "}  // namespace ohpx::metrics\n"
         "namespace ohpx::orb {\n"
         "void f() {\n"
         "  metrics::MetricsRegistry::global().counter_handle(\n"
         "      metrics::names::kRmiCalls);\n"
         "}\n"
         "}  // namespace ohpx::orb\n",
         []),  # constants (not raw literals) must NOT trip the rule
        ("registry internals are exempt",
         "src/ohpx/metrics/metrics.cpp",
         "namespace ohpx::metrics {\n"
         "struct MetricsRegistry { unsigned long* counter_handle(const char*);"
         " };\n"
         "void warm(MetricsRegistry& registry) {\n"
         '  registry.counter_handle("rmi.calls");\n'
         "}\n"
         "}  // namespace ohpx::metrics\n",
         []),  # src/ohpx/metrics/ owns the names — never flagged
    ]

    for engine_name, factory in engine_factories:
        # 1. The clean tree is clean.
        with tempfile.TemporaryDirectory() as tmp:
            root = _make_tree(Path(tmp))
            violations = _collect(root, factory(root))
            expect(not violations,
                   f"[{engine_name}] clean tree flagged: {violations}")

        # 2. Each injected violation is caught under the right rule.
        for rule, rel, text in injections:
            with tempfile.TemporaryDirectory() as tmp:
                root = _make_tree(Path(tmp))
                _write_in(root / rel, text)
                if rel.endswith(".cpp"):
                    commands = json.loads(
                        (root / "compile_commands.json").read_text())
                    commands.append(
                        {"directory": str(root),
                         "command": f"c++ -std=c++17 -I{root / 'src'} "
                                    f"-c {root / rel}",
                         "file": str(root / rel)})
                    (root / "compile_commands.json").write_text(
                        json.dumps(commands))
                violations = _collect(root, factory(root))
                expect(any(f"[{rule}]" in v for v in violations),
                       f"[{engine_name}] injected {rule} in {rel} not "
                       f"caught (got: {violations})")

        # 3. False-positive guards: the exemptions hold.
        with tempfile.TemporaryDirectory() as tmp:
            root = _make_tree(Path(tmp))
            violations = _collect(root, factory(root))
            expect(not any("lock-across-send" in v
                           and "transport" in v for v in violations),
                   f"[{engine_name}] transport roundtrip-under-io-lock "
                   f"flagged: {violations}")
            expect(not any("naked-mutex" in v and "sync" in v
                           for v in violations),
                   f"[{engine_name}] std::mutex inside ohpx/sync flagged: "
                   f"{violations}")

    # 4. Consistency rules (engine-independent): injected drift is caught;
    #    a fixture with no needles asserts the injection stays clean.
    for label, rel, text, needles in consistency_injections:
        with tempfile.TemporaryDirectory() as tmp:
            root = _make_tree(Path(tmp))
            _write_in(root / rel, text)
            violations = _collect(root, RegexEngine(root))
            if not needles:
                expect(not violations,
                       f"{label}: expected no violations "
                       f"(got: {violations})")
            for needle in needles:
                expect(any(needle in v for v in violations),
                       f"{label}: expected a violation mentioning "
                       f"{needle!r} (got: {violations})")

    if failures:
        for failure in failures:
            print(f"SELF-TEST FAIL: {failure}")
        return 1
    engines = ", ".join(name for name, _ in engine_factories)
    print(f"ohpx-lint-ast self-test: OK (engines: {engines}; "
          f"{len(injections)} scope fixtures, "
          f"{len(consistency_injections)} consistency fixtures)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    default_root = Path(__file__).resolve().parent.parent
    parser.add_argument("--root", type=Path, default=default_root,
                        help="repository root")
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="compile_commands.json path (default: "
                             "<root>/build/compile_commands.json)")
    parser.add_argument("--engine", choices=("auto", "libclang", "regex"),
                        default="auto",
                        help="auto = libclang when available, else regex")
    parser.add_argument("--self-test", action="store_true",
                        help="verify both engines against injected "
                             "violations")
    options = parser.parse_args()
    if options.self_test:
        return self_test()
    root = options.root.resolve()
    if not (root / "src").is_dir():
        print(f"ohpx-lint-ast: no src/ under {root}", file=sys.stderr)
        return 2
    compile_commands = (options.compile_commands
                        or root / "build" / "compile_commands.json")
    return run(root, options.engine, compile_commands)


if __name__ == "__main__":
    sys.exit(main())
