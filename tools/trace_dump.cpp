// trace_dump: run a representative traced workload and print the recorded
// spans — the quickest way to see what the ohpx::trace subsystem captures
// and to eyeball the exporters without writing a program.
//
// The workload covers the interesting pipeline shapes: plain same-LAN
// calls (nexus-tcp), capability-glued calls (auth + checksum chain), a
// migration mid-stream (cache invalidation + stale-reference retry), and
// a ratio-sampled burst.
//
// Usage:  trace_dump [--format chrome|text] [--out FILE] [--calls N]
//
//   --format chrome   Chrome trace_event JSON (chrome://tracing, Perfetto)
//   --format text     aligned call trees, one per root span (default)
//   --out FILE        write to FILE instead of stdout
//   --calls N         plain calls per phase (default 4)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>

#include "ohpx/ohpx.hpp"
#include "ohpx/scenario/echo.hpp"

namespace {

using namespace ohpx;

int run_workload(int calls) {
  runtime::World world;
  const netsim::LanId lan = world.add_lan("lan");
  const netsim::MachineId m0 = world.add_machine("client", lan);
  const netsim::MachineId m1 = world.add_machine("server-a", lan);
  const netsim::MachineId m2 = world.add_machine("server-b", lan);

  orb::Context& client = world.create_context(m0);
  orb::Context& server_a = world.create_context(m1);
  orb::Context& server_b = world.create_context(m2);

  auto servant = std::make_shared<scenario::EchoServant>();
  orb::ObjectRef ref = orb::RefBuilder(server_a, servant).build();
  scenario::EchoPointer echo(client, ref);
  for (int i = 0; i < calls; ++i) echo->ping();

  // A capability-glued reference: each call shows the cap.process /
  // cap.unprocess spans on both sides of the wire.
  auto auth = std::make_shared<cap::AuthenticationCapability>(
      crypto::Key128::from_passphrase("trace-demo"), "trace-demo",
      cap::Scope::always);
  auto checksum = std::make_shared<cap::ChecksumCapability>();
  orb::ObjectRef glued =
      orb::RefBuilder(server_a, ref.object_id()).glue({auth, checksum}).build();
  scenario::EchoPointer metered(client, glued);
  for (int i = 0; i < calls; ++i) metered->ping();

  // Migrate the object mid-stream: the next call records the fast-path
  // cache invalidation and re-selection in the trace.
  runtime::migrate_shared(ref.object_id(), server_a, server_b);
  for (int i = 0; i < calls; ++i) echo->ping();
  return 3 * calls;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string out_path;
  int calls = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--calls" && i + 1 < argc) {
      calls = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--format chrome|text] [--out FILE] "
                   "[--calls N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (format != "chrome" && format != "text") {
    std::fprintf(stderr, "unknown format '%s' (chrome|text)\n",
                 format.c_str());
    return 2;
  }
  if (calls < 1) calls = 1;

  trace::TraceSink::global().set_sampling(trace::Sampling::always);
  const int made = run_workload(calls);
  trace::TraceSink::global().set_sampling(trace::Sampling::off);

  const trace::TraceSnapshot snap = trace::TraceSink::global().snapshot();
  const std::string rendered = format == "chrome"
                                   ? trace::to_chrome_json(snap)
                                   : trace::to_text_tree(snap);
  if (out_path.empty()) {
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << rendered;
    std::fprintf(stderr, "%d calls -> %zu spans -> %s\n", made,
                 snap.spans.size(), out_path.c_str());
  }
  return 0;
}
