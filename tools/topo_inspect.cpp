// topo_inspect: parse a topology description (docs in
// src/ohpx/netsim/parser.hpp) and print the machine matrix — which link,
// and which placement predicates (same machine / LAN / campus), every
// machine pair would see.  Handy for debugging applicability rules before
// wiring a world into code.
//
// Usage:  topo_inspect <topology-file>
//         topo_inspect --example          (prints a commented sample file)
#include <cstdio>
#include <fstream>
#include <sstream>

#include "ohpx/netsim/parser.hpp"

namespace {

constexpr const char* kExample = R"(# sample topology
lan lab atm155 campus=0
lan annex ethernet100 campus=0
lan uni ethernet100 campus=1

machine bigiron lab
machine ws17 lab
machine annex1 annex
machine cluster uni

wan lab annex atm155
default_wan t3
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace ohpx;

  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <topology-file> | --example\n", argv[0]);
    return 2;
  }
  if (std::string_view(argv[1]) == "--example") {
    std::fputs(kExample, stdout);
    return 0;
  }

  std::ifstream file(argv[1]);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream text;
  text << file.rdbuf();

  netsim::ParsedTopology parsed;
  try {
    parsed = netsim::parse_topology(text.str());
  } catch (const Error& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }

  const netsim::Topology& topo = parsed.topology();
  std::printf("%zu LAN(s), %zu machine(s)\n\n", topo.lan_count(),
              topo.machine_count());

  std::printf("%-12s %-10s campus\n", "machine", "lan");
  for (const auto& [name, machine] : parsed.machines) {
    const auto lan = topo.lan_of(machine);
    std::printf("%-12s %-10s %u\n", name.c_str(), topo.lan_name(lan).c_str(),
                topo.campus_of(lan));
  }

  std::printf("\npairwise links (one-way time for a 1 MB payload):\n");
  std::printf("%-12s %-12s %-14s %-9s %s\n", "from", "to", "link", "ms/MB",
              "placement");
  for (const auto& [a_name, a] : parsed.machines) {
    for (const auto& [b_name, b] : parsed.machines) {
      if (a_name > b_name) continue;
      const netsim::LinkSpec link = topo.link_between(a, b);
      const double ms =
          static_cast<double>(link.transfer_time(1'000'000).count()) / 1e6;
      const char* placement = topo.same_machine(a, b) ? "same-machine"
                              : topo.same_lan(a, b)   ? "same-lan"
                              : topo.same_campus(a, b) ? "same-campus"
                                                       : "cross-campus";
      std::printf("%-12s %-12s %-14s %8.2f  %s\n", a_name.c_str(),
                  b_name.c_str(), link.name.c_str(), ms, placement);
    }
  }
  return 0;
}
