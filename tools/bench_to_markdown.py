#!/usr/bin/env python3
"""Convert google-benchmark JSON output into EXPERIMENTS.md-style tables.

Usage:
    build/bench/bench_fig5_atm --benchmark_format=json > fig5.json
    tools/bench_to_markdown.py fig5.json

Rows are grouped by the benchmark family (the part before the first '/'),
columns are the numeric arguments, and the reported value is the `Mbps`
counter when present (the convention of the Figure 5 / Figure 4 benches),
falling back to bytes_per_second or real_time.
"""
import json
import sys
from collections import defaultdict


def value_of(benchmark: dict) -> str:
    if "Mbps" in benchmark:
        return f"{benchmark['Mbps']:.1f} Mbps"
    if "Mbps_effective" in benchmark:
        return f"{benchmark['Mbps_effective']:.1f} Mbps"
    if "bytes_per_second" in benchmark:
        return f"{benchmark['bytes_per_second'] / 1e6:.1f} MB/s"
    unit = benchmark.get("time_unit", "ns")
    return f"{benchmark.get('real_time', 0):.0f} {unit}"


def split_name(name: str) -> tuple[str, str]:
    # "Family/123/iterations:8/manual_time" -> ("Family", "123")
    parts = name.split("/")
    family = parts[0]
    args = [p for p in parts[1:] if p and p[0].isdigit()]
    return family, "/".join(args) if args else "-"


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as handle:
        report = json.load(handle)

    table: dict[str, dict[str, str]] = defaultdict(dict)
    columns: list[str] = []
    for benchmark in report.get("benchmarks", []):
        family, arg = split_name(benchmark["name"])
        table[family][arg] = value_of(benchmark)
        if arg not in columns:
            columns.append(arg)

    header = ["series"] + columns
    print("| " + " | ".join(header) + " |")
    print("|" + "---|" * len(header))
    for family, cells in table.items():
        row = [family] + [cells.get(col, "—") for col in columns]
        print("| " + " | ".join(row) + " |")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
