#!/usr/bin/env python3
"""ohpx-lint: repo-specific invariant checks the compiler cannot enforce.

Checks (each also exercised by --self-test):

  pragma-once        every header under src/ starts its include guard with
                     `#pragma once`
  no-stdio           no std::cout / std::cerr / printf-family calls in src/
                     (the logging sink src/ohpx/common/log.cpp is the one
                     documented exemption — everything else goes through
                     ohpx::log)
  no-naked-new       no naked `new` / `delete` expressions in src/ (use
                     std::make_shared / std::make_unique / containers);
                     `= delete` declarations are fine
  cmake-lists        every .cpp under src/ is listed in its directory's
                     CMakeLists.txt (an unlisted file silently never builds)
  cap-pairs          every builtin capability header declares both
                     `process` and `unprocess` overrides, and its .cpp
                     defines both — the paper's §4 symmetry contract
  chain-contract     CapabilityChain::process_inbound unprocesses in
                     *reverse* order (rbegin/rend) while process_outbound
                     runs forward — the chain composes like function
                     application, so inbound must peel in reverse
  metric-handles     no per-call metric-name concatenation
                     (`registry.increment("..." + ...)` and friends) in the
                     hot-path dirs src/ohpx/orb/ and src/ohpx/protocol/ —
                     intern a counter_handle()/latency_handle() once and
                     bump the handle instead
  span-names         no trace span/event names built by runtime string
                     concatenation in src/ohpx/orb/, src/ohpx/protocol/ and
                     src/ohpx/capability/ — SpanRecord stores a bounded
                     copy of a string literal; dynamic detail goes in the
                     annotation (mirror of the metric-handles rule)
  no-test-sleeps     no wall-clock waits (std::this_thread::sleep_for /
                     sleep_until, sleep/usleep/nanosleep) in tests/ —
                     time-dependent tests install a resilience ManualClock
                     and advance virtual time instead, so the suite stays
                     fast and deterministic.  A genuinely wall-clock test
                     (thread-pool timing, lease TTLs against the steady
                     clock) marks the line with
                     `// ohpx-lint: allow-wall-clock (reason)`

Usage:
  python3 tools/ohpx_lint.py [--root REPO_ROOT]   # lint the repo, exit 0/1
  python3 tools/ohpx_lint.py --self-test          # verify the linter itself
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
from pathlib import Path

# ---------------------------------------------------------------------------
# helpers


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving newlines.

    Good enough for lint heuristics: handles //, /* */, "..." with escapes,
    '...' with escapes, and raw strings R"delim(...)delim" with any
    delimiter (including the empty one).  Replaced characters become
    spaces so line/column positions survive.
    """
    out = []
    i, n = 0, len(text)
    raw_open = re.compile(r'R"([^()\\ \t\n]{0,16})\(')
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            segment = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in segment))
            i = j + 2
        elif c == "R" and nxt == '"' and (match := raw_open.match(text, i)):
            # Raw string: runs to `)delim"` for the exact opening delimiter
            # (e.g. R"ohpx(...)ohpx"), so nothing inside — quotes, escapes,
            # a bare )" under a non-empty delimiter — terminates it early.
            closer = ")" + match.group(1) + '"'
            j = text.find(closer, match.end())
            j = n - len(closer) if j == -1 else j
            segment = text[i : j + len(closer)]
            out.append("".join(ch if ch == "\n" else " " for ch in segment))
            i = j + len(closer)
        elif c in ('"', "'"):
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            segment = text[i : min(j, n - 1) + 1]
            out.append("".join(ch if ch == "\n" else " " for ch in segment))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.src = root / "src"
        self.violations: list[str] = []

    def report(self, path: Path, line: int, rule: str, message: str) -> None:
        try:
            shown = path.relative_to(self.root)
        except ValueError:
            shown = path
        self.violations.append(f"{shown}:{line}: [{rule}] {message}")

    # -- individual checks --------------------------------------------------

    def check_pragma_once(self) -> None:
        for header in sorted(self.src.rglob("*.hpp")):
            text = header.read_text(encoding="utf-8", errors="replace")
            if "#pragma once" not in text:
                self.report(header, 1, "pragma-once",
                            "header lacks `#pragma once`")

    STDIO_RE = re.compile(
        r"std\s*::\s*(cout|cerr)\b|(?<![\w:])(?:f|s|v|vf|vs)?printf\s*\(")
    STDIO_EXEMPT = ("ohpx/common/log.cpp",)  # the logger's own sink

    def check_no_stdio(self) -> None:
        for source in sorted(self.src.rglob("*.[ch]pp")):
            rel = source.relative_to(self.src).as_posix()
            if rel in self.STDIO_EXEMPT:
                continue
            clean = strip_comments_and_strings(
                source.read_text(encoding="utf-8", errors="replace"))
            for lineno, line in enumerate(clean.splitlines(), 1):
                if self.STDIO_RE.search(line):
                    self.report(source, lineno, "no-stdio",
                                "direct stdio in src/ — use ohpx::log")

    NEW_RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_(:]")
    DELETE_RE = re.compile(r"(?<![\w.])delete\b(\s*\[\s*\])?")

    def check_no_naked_new(self) -> None:
        for source in sorted(self.src.rglob("*.[ch]pp")):
            clean = strip_comments_and_strings(
                source.read_text(encoding="utf-8", errors="replace"))
            # `= delete` / `= delete;` declarations are not delete-exprs.
            clean = re.sub(r"=\s*delete\b", "", clean)
            for lineno, line in enumerate(clean.splitlines(), 1):
                if self.NEW_RE.search(line):
                    self.report(source, lineno, "no-naked-new",
                                "naked `new` — use make_shared/make_unique")
                if self.DELETE_RE.search(line):
                    self.report(source, lineno, "no-naked-new",
                                "naked `delete` — owning types manage memory")

    def check_cmake_lists(self) -> None:
        for source in sorted(self.src.rglob("*.cpp")):
            directory = source.parent
            # Walk up to the nearest CMakeLists.txt at or above the file.
            listfile = None
            probe = directory
            while probe >= self.src.parent:
                candidate = probe / "CMakeLists.txt"
                if candidate.exists():
                    listfile = candidate
                    break
                probe = probe.parent
            if listfile is None:
                self.report(source, 1, "cmake-lists",
                            "no CMakeLists.txt found above file")
                continue
            rel = source.relative_to(listfile.parent).as_posix()
            text = listfile.read_text(encoding="utf-8", errors="replace")
            if not re.search(r"(?<![\w/])" + re.escape(rel) + r"(?![\w.])", text):
                self.report(source, 1, "cmake-lists",
                            f"not listed in {listfile.relative_to(self.root)}"
                            " — it never builds")

    def check_cap_pairs(self) -> None:
        builtin = self.src / "ohpx" / "capability" / "builtin"
        if not builtin.is_dir():
            return
        for header in sorted(builtin.glob("*.hpp")):
            text = strip_comments_and_strings(
                header.read_text(encoding="utf-8", errors="replace"))
            has_process = re.search(r"\bprocess\s*\(", text)
            has_unprocess = re.search(r"\bunprocess\s*\(", text)
            if not (has_process and has_unprocess):
                missing = "process" if not has_process else "unprocess"
                self.report(header, 1, "cap-pairs",
                            f"builtin capability lacks a `{missing}` override"
                            " — the §4 symmetry contract requires the pair")
            impl = header.with_suffix(".cpp")
            if not impl.exists():
                self.report(header, 1, "cap-pairs",
                            "builtin capability has no matching .cpp")
                continue
            impl_text = strip_comments_and_strings(
                impl.read_text(encoding="utf-8", errors="replace"))
            for member in ("process", "unprocess"):
                if not re.search(r"::\s*" + member + r"\s*\(", impl_text):
                    self.report(impl, 1, "cap-pairs",
                                f"does not define `{member}` — every builtin"
                                " defines the process/unprocess pair")

    def _function_body(self, text: str, marker: str) -> str:
        """Extracts the brace-balanced body following `marker`, or ''. """
        start = text.find(marker)
        if start == -1:
            return ""
        brace = text.find("{", start)
        if brace == -1:
            return ""
        depth, i = 0, brace
        while i < len(text):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    return text[brace : i + 1]
            i += 1
        return text[brace:]

    def check_chain_contract(self) -> None:
        chain = self.src / "ohpx" / "capability" / "chain.cpp"
        if not chain.exists():
            self.report(chain, 1, "chain-contract", "chain.cpp missing")
            return
        text = strip_comments_and_strings(
            chain.read_text(encoding="utf-8", errors="replace"))
        outbound = self._function_body(text, "CapabilityChain::process_outbound")
        inbound = self._function_body(text, "CapabilityChain::process_inbound")
        if not outbound or "process(" not in outbound:
            self.report(chain, 1, "chain-contract",
                        "process_outbound must run capability->process() "
                        "front-to-back")
        elif "rbegin" in outbound:
            self.report(chain, 1, "chain-contract",
                        "process_outbound must iterate forward, not reversed")
        if not inbound or "unprocess(" not in inbound:
            self.report(chain, 1, "chain-contract",
                        "process_inbound must run capability->unprocess()")
        elif "rbegin" not in inbound:
            self.report(chain, 1, "chain-contract",
                        "process_inbound must unprocess in reverse "
                        "(rbegin/rend) — the chain composes like function "
                        "application")

    # Hot-path dirs where per-call metric-name building is banned; the
    # MetricsRegistry handle API exists precisely so these never allocate.
    METRIC_HOT_DIRS = ("ohpx/orb", "ohpx/protocol")
    METRIC_CALL_RE = re.compile(r"\.\s*(increment|record_latency)\s*\(")

    def check_metric_handles(self) -> None:
        for subdir in self.METRIC_HOT_DIRS:
            base = self.src / subdir
            if not base.is_dir():
                continue
            for source in sorted(base.rglob("*.[ch]pp")):
                clean = strip_comments_and_strings(
                    source.read_text(encoding="utf-8", errors="replace"))
                for lineno, line in enumerate(clean.splitlines(), 1):
                    for match in self.METRIC_CALL_RE.finditer(line):
                        # First argument only (the metric name): a `+`
                        # there means the name is concatenated per call.
                        name_arg = re.split(r"[,)]", line[match.end():],
                                            maxsplit=1)[0]
                        if "+" in name_arg:
                            self.report(
                                source, lineno, "metric-handles",
                                "metric name built per call — intern a "
                                "counter_handle()/latency_handle() once "
                                "and bump the handle")

    # Dirs where span/event names must be literals (the capability layer is
    # on the traced path too, unlike the metric rule's scope).
    SPAN_HOT_DIRS = ("ohpx/orb", "ohpx/protocol", "ohpx/capability")
    SPAN_DECL_RE = re.compile(r"\btrace\s*::\s*Span\s+\w+\s*\(")
    EVENT_CALL_RE = re.compile(r"\btrace\s*::\s*event\s*\(")

    @staticmethod
    def _call_args(text: str, start: int) -> list[str]:
        """Splits the argument list of a call whose `(` precedes `start`
        into top-level arguments (handles nested parens and newlines)."""
        depth, args, current = 1, [], []
        i = start
        while i < len(text) and depth > 0:
            c = text[i]
            if c in "([{":
                depth += 1
                current.append(c)
            elif c in ")]}":
                depth -= 1
                if depth > 0:
                    current.append(c)
            elif c == "," and depth == 1:
                args.append("".join(current))
                current = []
            else:
                current.append(c)
            i += 1
        args.append("".join(current))
        return args

    def check_span_names(self) -> None:
        for subdir in self.SPAN_HOT_DIRS:
            base = self.src / subdir
            if not base.is_dir():
                continue
            for source in sorted(base.rglob("*.[ch]pp")):
                clean = strip_comments_and_strings(
                    source.read_text(encoding="utf-8", errors="replace"))
                # Span(kind, name): the name is the *second* argument.
                for match in self.SPAN_DECL_RE.finditer(clean):
                    args = self._call_args(clean, match.end())
                    name_arg = args[1] if len(args) > 1 else ""
                    if "+" in name_arg:
                        lineno = clean.count("\n", 0, match.start()) + 1
                        self.report(
                            source, lineno, "span-names",
                            "span name built per call — use a string "
                            "literal and put dynamic detail in annotate()")
                # trace::event(name, annotation): the name is the first.
                for match in self.EVENT_CALL_RE.finditer(clean):
                    name_arg = self._call_args(clean, match.end())[0]
                    if "+" in name_arg:
                        lineno = clean.count("\n", 0, match.start()) + 1
                        self.report(
                            source, lineno, "span-names",
                            "event name built per call — use a string "
                            "literal and put dynamic detail in the "
                            "annotation")

    # Wall-clock waits banned from tests/: this_thread sleeps and the C
    # sleep family.  resilience::sleep_for is fine — under a ManualClock it
    # is a pure virtual-time advance, which is exactly the point.
    SLEEP_RE = re.compile(
        r"this_thread\s*::\s*sleep_(?:for|until)\s*\("
        r"|(?<![\w:])u?sleep\s*\("
        r"|(?<![\w:])nanosleep\s*\(")
    SLEEP_ALLOW_MARKER = "ohpx-lint: allow-wall-clock"

    def check_no_test_sleeps(self) -> None:
        tests = self.root / "tests"
        if not tests.is_dir():
            return
        for source in sorted(tests.rglob("*.[ch]pp")):
            text = source.read_text(encoding="utf-8", errors="replace")
            raw_lines = text.splitlines()
            clean = strip_comments_and_strings(text)
            for lineno, line in enumerate(clean.splitlines(), 1):
                if not self.SLEEP_RE.search(line):
                    continue
                if self.SLEEP_ALLOW_MARKER in raw_lines[lineno - 1]:
                    continue
                self.report(
                    source, lineno, "no-test-sleeps",
                    "wall-clock wait in tests/ — install a resilience "
                    "ManualClock and advance virtual time, or append "
                    "`// ohpx-lint: allow-wall-clock (reason)`")

    # -- driver -------------------------------------------------------------

    CHECKS = ("pragma_once", "no_stdio", "no_naked_new", "cmake_lists",
              "cap_pairs", "chain_contract", "metric_handles", "span_names",
              "no_test_sleeps")

    def run(self) -> int:
        for check in self.CHECKS:
            getattr(self, f"check_{check}")()
        for violation in self.violations:
            print(violation)
        if self.violations:
            print(f"ohpx-lint: {len(self.violations)} violation(s)")
            return 1
        print(f"ohpx-lint: OK ({len(self.CHECKS)} checks clean)")
        return 0


# ---------------------------------------------------------------------------
# self-test: build throwaway trees with injected violations and confirm the
# linter flags each one (and stays quiet on a clean tree).

CLEAN_HEADER = """\
#pragma once
namespace ohpx { int answer(); }
"""

CLEAN_SOURCE = """\
#include "clean.hpp"
// a comment that says new things and printf-like words is fine
namespace ohpx { int answer() { return 42; } }
"""

CLEAN_CHAIN = """\
#include "ohpx/capability/chain.hpp"
void CapabilityChain::process_outbound(B& b, const C& c) {
  for (const auto& capability : capabilities_) capability->process(b, c);
}
void CapabilityChain::process_inbound(B& b, const C& c) {
  for (auto it = capabilities_.rbegin(); it != capabilities_.rend(); ++it)
    (*it)->unprocess(b, c);
}
"""

CLEAN_CAP_HPP = """\
#pragma once
class DemoCapability {
 public:
  void process(Buffer& b, const CallContext& c);
  void unprocess(Buffer& b, const CallContext& c);
};
"""

CLEAN_CAP_CPP = """\
#include "demo.hpp"
void DemoCapability::process(Buffer& b, const CallContext& c) {}
void DemoCapability::unprocess(Buffer& b, const CallContext& c) {}
"""


def _make_tree(tmp: Path) -> Path:
    """Builds a minimal clean repo the linter accepts."""
    root = tmp
    src = root / "src"
    builtin = src / "ohpx" / "capability" / "builtin"
    builtin.mkdir(parents=True)
    (src / "clean.hpp").write_text(CLEAN_HEADER)
    (src / "clean.cpp").write_text(CLEAN_SOURCE)
    (src / "CMakeLists.txt").write_text("add_library(x clean.cpp)\n")
    chain_dir = src / "ohpx" / "capability"
    (chain_dir / "chain.cpp").write_text(CLEAN_CHAIN)
    (chain_dir / "CMakeLists.txt").write_text(
        "add_library(cap chain.cpp builtin/demo.cpp)\n")
    (builtin / "demo.hpp").write_text(CLEAN_CAP_HPP)
    (builtin / "demo.cpp").write_text(CLEAN_CAP_CPP)
    return root


def _write_in(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


def _lint_collect(root: Path) -> list[str]:
    linter = Linter(root)
    for check in Linter.CHECKS:
        getattr(linter, f"check_{check}")()
    return linter.violations


def self_test() -> int:
    failures: list[str] = []

    def expect(condition: bool, label: str) -> None:
        if not condition:
            failures.append(label)

    # 1. A clean tree produces zero violations.
    with tempfile.TemporaryDirectory() as tmp:
        root = _make_tree(Path(tmp))
        violations = _lint_collect(root)
        expect(not violations, f"clean tree flagged: {violations}")

    injections = [
        ("pragma-once",
         lambda r: (r / "src" / "bad.hpp").write_text("int x;\n")),
        ("no-stdio",
         lambda r: (r / "src" / "clean.cpp").write_text(
             '#include <cstdio>\nvoid f() { printf("hi"); }\n')),
        ("no-stdio",
         lambda r: (r / "src" / "clean.cpp").write_text(
             "#include <iostream>\nvoid f() { std::cout << 1; }\n")),
        ("no-naked-new",
         lambda r: (r / "src" / "clean.cpp").write_text(
             "void f() { int* p = new int(3); delete p; }\n")),
        ("cmake-lists",
         lambda r: (r / "src" / "orphan.cpp").write_text("int y;\n")),
        ("cap-pairs",
         lambda r: (r / "src" / "ohpx" / "capability" / "builtin" /
                    "demo.hpp").write_text(
             "#pragma once\nclass DemoCapability {\n public:\n"
             "  void process(Buffer& b, const CallContext& c);\n};\n")),
        ("cap-pairs",
         lambda r: (r / "src" / "ohpx" / "capability" / "builtin" /
                    "demo.cpp").write_text(
             "#include \"demo.hpp\"\n"
             "void DemoCapability::process(Buffer& b, const CallContext& c)"
             " {}\n")),
        ("chain-contract",
         lambda r: (r / "src" / "ohpx" / "capability" / "chain.cpp")
         .write_text(CLEAN_CHAIN.replace(
             "for (auto it = capabilities_.rbegin(); "
             "it != capabilities_.rend(); ++it)\n    (*it)->unprocess(b, c);",
             "for (const auto& capability : capabilities_) "
             "capability->unprocess(b, c);"))),
        ("metric-handles",
         lambda r: _write_in(r / "src" / "ohpx" / "orb" / "hot.cpp",
             "void f(Registry& registry, const char* name) {\n"
             '  registry.increment("rmi.calls." + std::string(name));\n'
             "}\n")),
        ("span-names",
         lambda r: _write_in(r / "src" / "ohpx" / "orb" / "spanbad.cpp",
             "void f(const char* m) {\n"
             "  trace::Span span(trace::SpanKind::invoke,\n"
             '                   ("rmi." + std::string(m)).c_str());\n'
             "}\n")),
        ("span-names",
         lambda r: _write_in(r / "src" / "ohpx" / "protocol" / "evbad.cpp",
             "void f(const std::string& why) {\n"
             '  trace::event(("retry." + why).c_str(), "");\n'
             "}\n")),
        ("no-test-sleeps",
         lambda r: _write_in(r / "tests" / "test_sleepy.cpp",
             "#include <thread>\n"
             "void f() {\n"
             "  std::this_thread::sleep_for(std::chrono::milliseconds(5));\n"
             "}\n")),
        ("no-test-sleeps",
         lambda r: _write_in(r / "tests" / "test_usleep.cpp",
             "#include <unistd.h>\n"
             "void f() { usleep(100); }\n")),
    ]

    # 2. Each injected violation is caught under the right rule.
    for rule, inject in injections:
        with tempfile.TemporaryDirectory() as tmp:
            root = _make_tree(Path(tmp))
            inject(root)
            violations = _lint_collect(root)
            expect(any(f"[{rule}]" in v for v in violations),
                   f"injected {rule} violation not caught "
                   f"(got: {violations})")

    # 3. False-positive guards: comments/strings/deleted functions pass.
    with tempfile.TemporaryDirectory() as tmp:
        root = _make_tree(Path(tmp))
        (root / "src" / "clean.cpp").write_text(
            '#include "clean.hpp"\n'
            "// registering under a new name; delete old entries\n"
            '/* new delete printf std::cout */\n'
            'const char* kDoc = "use new printf std::cout delete";\n'
            "struct NoCopy { NoCopy(const NoCopy&) = delete; };\n")
        violations = _lint_collect(root)
        expect(not violations,
               f"comment/string/=delete false positive: {violations}")

    # 3b. Raw strings with empty *and* non-empty delimiters are blanked
    #     out — a non-empty delimiter means an embedded `)"` must NOT
    #     terminate the literal early and leak its tail into the scan.
    with tempfile.TemporaryDirectory() as tmp:
        root = _make_tree(Path(tmp))
        (root / "src" / "clean.cpp").write_text(
            '#include "clean.hpp"\n'
            'const char* kEmpty = R"(new delete printf std::cout)";\n'
            'const char* kNamed = R"ohpx(quote )" then new printf\n'
            'std::cerr << delete across lines)ohpx";\n'
            "namespace ohpx { int answer() { return 42; } }\n")
        violations = _lint_collect(root)
        expect(not violations,
               f"raw-string false positive: {violations}")
    stripped = strip_comments_and_strings(
        'a R"(x " y)" b R"id(close )" new "inner)id" c "s" d')
    expect("new" not in stripped,
           f"non-empty raw delimiter terminated early: {stripped!r}")
    for marker in ("a", "b", "c", "d"):
        expect(re.search(rf"\b{marker}\b", stripped) is not None,
               f"stripper ate code around raw strings: {stripped!r}")

    # 4. metric-handles ignores literal names and delta arithmetic.
    with tempfile.TemporaryDirectory() as tmp:
        root = _make_tree(Path(tmp))
        _write_in(root / "src" / "ohpx" / "orb" / "ok.cpp",
                  "void f(Registry& registry, unsigned n) {\n"
                  '  registry.increment("rmi.calls");\n'
                  '  registry.increment("rmi.calls", n + 1);\n'
                  "}\n")
        _write_in(root / "src" / "ohpx" / "orb" / "CMakeLists.txt",
                  "add_library(o ok.cpp)\n")
        violations = [v for v in _lint_collect(root) if "metric-handles" in v]
        expect(not violations,
               f"metric-handles false positive: {violations}")

    # 5. span-names ignores literal names and dynamic *annotations*.
    with tempfile.TemporaryDirectory() as tmp:
        root = _make_tree(Path(tmp))
        _write_in(root / "src" / "ohpx" / "orb" / "spanok.cpp",
                  "void f(const std::string& proto) {\n"
                  "  trace::Span span(trace::SpanKind::invoke,"
                  ' "rmi.invoke");\n'
                  '  span.annotate("proto:" + proto);\n'
                  '  trace::event("retry.stale_ref", "epoch " + proto);\n'
                  "}\n")
        _write_in(root / "src" / "ohpx" / "orb" / "CMakeLists.txt",
                  "add_library(o spanok.cpp)\n")
        violations = [v for v in _lint_collect(root) if "span-names" in v]
        expect(not violations,
               f"span-names false positive: {violations}")

    # 6. no-test-sleeps: the resilience clock, virtual-time advances, and
    #    explicitly marked wall-clock waits all pass.
    with tempfile.TemporaryDirectory() as tmp:
        root = _make_tree(Path(tmp))
        _write_in(root / "tests" / "test_clocked.cpp",
                  "void f(resilience::ManualClock& clock) {\n"
                  "  resilience::sleep_for(std::chrono::milliseconds(5));\n"
                  "  clock.advance(std::chrono::milliseconds(5));\n"
                  "  std::this_thread::sleep_for(kTick);"
                  "  // ohpx-lint: allow-wall-clock (thread-pool timing)\n"
                  "}\n")
        violations = [v for v in _lint_collect(root) if "no-test-sleeps" in v]
        expect(not violations,
               f"no-test-sleeps false positive: {violations}")

    if failures:
        for failure in failures:
            print(f"SELF-TEST FAIL: {failure}")
        return 1
    print(f"ohpx-lint self-test: OK "
          f"({1 + len(injections) + 5} fixtures verified)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: the repo containing "
                             "this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the linter catches injected violations")
    options = parser.parse_args()
    if options.self_test:
        return self_test()
    if not (options.root / "src").is_dir():
        print(f"ohpx-lint: no src/ under {options.root}", file=sys.stderr)
        return 2
    return Linter(options.root.resolve()).run()


if __name__ == "__main__":
    sys.exit(main())
