// ohpx-top: a `top`-style live view over the introspection exporter.
//
// Polls http://HOST:PORT/metrics (the IntrospectHttpServer exposition),
// parses the Prometheus text format with no dependencies beyond the
// socket API, and renders a per-context table — calls/s (from deltas
// between polls), dispatch p50/p99 — plus the reactor gauges and every
// registered breaker entry.  Standalone on purpose: it links nothing
// from ohpx, so it can watch any process that serves the exposition.
//
// usage: ohpx_top [HOST:]PORT [--interval SEC] [--once] [--raw]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace {

struct Sample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

// ---- transport -------------------------------------------------------------

std::string http_get(const std::string& host, std::uint16_t port,
                     const std::string& path, std::string& error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = "socket() failed";
    return {};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    error = "bad host address " + host + " (numeric IPv4 only)";
    ::close(fd);
    return {};
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error = "connect to " + host + ":" + std::to_string(port) + " refused";
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) < 0) {
    error = "send failed";
    ::close(fd);
    return {};
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
    if (got <= 0) break;
    response.append(buffer, static_cast<std::size_t>(got));
  }
  ::close(fd);
  const std::size_t split = response.find("\r\n\r\n");
  if (split == std::string::npos) {
    error = "malformed HTTP response";
    return {};
  }
  if (response.find("200") == std::string::npos ||
      response.find("200") > response.find("\r\n")) {
    error = "non-200 response: " + response.substr(0, response.find("\r\n"));
    return {};
  }
  return response.substr(split + 4);
}

// ---- exposition parser -----------------------------------------------------

std::map<std::string, std::string> parse_labels(const std::string& text) {
  std::map<std::string, std::string> labels;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eq = text.find('=', pos);
    if (eq == std::string::npos) break;
    const std::string key = text.substr(pos, eq - pos);
    if (eq + 1 >= text.size() || text[eq + 1] != '"') break;
    std::string value;
    std::size_t i = eq + 2;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;
      value.push_back(text[i]);
      ++i;
    }
    labels.emplace(key, value);
    pos = i + 1;
    while (pos < text.size() && (text[pos] == ',' || text[pos] == ' ')) ++pos;
  }
  return labels;
}

std::vector<Sample> parse_exposition(const std::string& text) {
  std::vector<Sample> samples;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;

    Sample sample;
    const std::size_t brace = line.find('{');
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    if (brace != std::string::npos && brace < space) {
      sample.name = line.substr(0, brace);
      const std::size_t close = line.find('}', brace);
      if (close == std::string::npos) continue;
      sample.labels = parse_labels(line.substr(brace + 1, close - brace - 1));
    } else {
      sample.name = line.substr(0, space);
    }
    sample.value = std::strtod(line.c_str() + space + 1, nullptr);
    samples.push_back(std::move(sample));
  }
  return samples;
}

// ---- table rendering -------------------------------------------------------

struct ContextRow {
  double requests = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double find_value(const std::vector<Sample>& samples, const char* name,
                  double fallback = 0.0) {
  for (const auto& sample : samples) {
    if (sample.name == name) return sample.value;
  }
  return fallback;
}

const char* breaker_state_name(double value) {
  if (value < 0.5) return "closed";
  if (value < 1.5) return "OPEN";
  return "half-open";
}

void render(const std::vector<Sample>& samples,
            std::map<std::string, double>& previous_requests,
            double interval_s, bool clear_screen) {
  std::map<std::string, ContextRow> contexts;
  for (const auto& sample : samples) {
    if (sample.name == "ohpx_server_context_requests_total") {
      const auto it = sample.labels.find("context");
      if (it != sample.labels.end()) {
        contexts[it->second].requests = sample.value;
      }
    } else if (sample.name == "ohpx_server_context_latency_us") {
      const auto ctx = sample.labels.find("context");
      const auto quantile = sample.labels.find("quantile");
      if (ctx == sample.labels.end() || quantile == sample.labels.end()) {
        continue;
      }
      if (quantile->second == "0.5") {
        contexts[ctx->second].p50_us = sample.value;
      } else if (quantile->second == "0.99") {
        contexts[ctx->second].p99_us = sample.value;
      }
    }
  }

  if (clear_screen) std::fputs("\x1b[2J\x1b[H", stdout);

  std::printf("ohpx-top  calls=%.0f  inflight=%.0f/%.0f  conns=%.0f"
              "  backpressure=%.0f  cache-hit=%.2f\n",
              find_value(samples, "ohpx_rmi_calls_total"),
              find_value(samples, "ohpx_reactor_inflight"),
              find_value(samples, "ohpx_reactor_inflight_window"),
              find_value(samples, "ohpx_reactor_connections"),
              find_value(samples, "ohpx_reactor_backpressure_total"),
              find_value(samples, "ohpx_rmi_select_cache_hit_ratio"));
  std::printf("reactor: loop-lag p99=%.0fus  stalls=%.0f  reconnects=%.0f"
              "  flight-recorder=%.0f events\n",
              [&samples] {
                for (const auto& sample : samples) {
                  if (sample.name == "ohpx_reactor_loop_lag_us" &&
                      sample.labels.count("quantile") != 0 &&
                      sample.labels.at("quantile") == "0.99") {
                    return sample.value;
                  }
                }
                return 0.0;
              }(),
              find_value(samples, "ohpx_rmi_reactor_stall_total"),
              find_value(samples, "ohpx_reactor_reconnects_total"),
              find_value(samples, "ohpx_flight_recorder_retained"));
  std::printf("\n%-10s %12s %10s %12s %12s\n", "CONTEXT", "REQUESTS",
              "CALLS/S", "P50(us)", "P99(us)");
  for (const auto& [context, row] : contexts) {
    double rate = 0.0;
    const auto prev = previous_requests.find(context);
    if (prev != previous_requests.end() && interval_s > 0.0) {
      rate = (row.requests - prev->second) / interval_s;
      if (rate < 0.0) rate = 0.0;  // exporter restarted; counter reset
    }
    previous_requests[context] = row.requests;
    std::printf("%-10s %12.0f %10.1f %12.0f %12.0f\n", context.c_str(),
                row.requests, rate, row.p50_us, row.p99_us);
  }
  if (contexts.empty()) {
    std::printf("(no per-context series yet — waiting for traffic)\n");
  }

  bool breaker_header = false;
  for (const auto& sample : samples) {
    if (sample.name != "ohpx_breaker_state") continue;
    if (!breaker_header) {
      std::printf("\n%-24s %-16s %-12s %s\n", "BREAKER SET", "ENTRY",
                  "PROTOCOL", "STATE");
      breaker_header = true;
    }
    const auto label = [&sample](const char* key) {
      const auto it = sample.labels.find(key);
      return it == sample.labels.end() ? std::string("-") : it->second;
    };
    std::printf("%-24s %-16s %-12s %s\n", label("set").c_str(),
                label("entry").c_str(), label("protocol").c_str(),
                breaker_state_name(sample.value));
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double interval_s = 2.0;
  bool once = false;
  bool raw = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--interval" && i + 1 < argc) {
      interval_s = std::strtod(argv[++i], nullptr);
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--raw") {
      raw = true;
    } else if (arg == "--help") {
      std::printf("usage: ohpx_top [HOST:]PORT [--interval SEC] [--once] "
                  "[--raw]\n");
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      const std::size_t colon = arg.find(':');
      if (colon == std::string::npos) {
        port = static_cast<std::uint16_t>(std::strtoul(arg.c_str(), nullptr,
                                                       10));
      } else {
        host = arg.substr(0, colon);
        port = static_cast<std::uint16_t>(
            std::strtoul(arg.c_str() + colon + 1, nullptr, 10));
      }
    } else {
      std::fprintf(stderr, "ohpx-top: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "ohpx-top: missing [HOST:]PORT (see --help)\n");
    return 2;
  }

  std::map<std::string, double> previous_requests;
  for (;;) {
    std::string error;
    const std::string payload = http_get(host, port, "/metrics", error);
    if (!error.empty()) {
      std::fprintf(stderr, "ohpx-top: %s\n", error.c_str());
      if (once) return 1;
    } else if (raw) {
      std::fputs(payload.c_str(), stdout);
    } else {
      render(parse_exposition(payload), previous_requests, interval_s, !once);
    }
    if (once) return 0;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(interval_s < 0.1 ? 0.1 : interval_s));
  }
}
