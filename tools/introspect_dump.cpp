// introspect_dump: drive real traffic through a two-context world, then
// write one full introspection exposition payload to --out (or stdout).
//
// The point is to exercise every exporter family with live series — sync
// and async calls over tcp (reactor loop lag, batches, inflight window),
// a registered breaker set (ohpx_breaker_state), an application error
// (rmi.errors / server.errors / flight recorder) — so the
// check_metrics_text ctest fixture and the CI bench-smoke scrape validate
// the exposition against a payload that looks like production, not an
// empty registry.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "ohpx/common/error.hpp"
#include "ohpx/introspect/exposition.hpp"
#include "ohpx/introspect/flight_recorder.hpp"
#include "ohpx/metrics/metrics.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/resilience/breaker.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/echo.hpp"

namespace {

int run(const char* out_path) {
  using ohpx::scenario::EchoServant;
  using ohpx::scenario::EchoStub;

  // Arm the gated dispatch timers before driving traffic, the way any
  // exporter-carrying process is armed, so the per-context latency
  // summaries in the payload carry real samples.
  ohpx::metrics::enable_deep_timing();

  ohpx::runtime::World world;
  const auto lan = world.add_lan("lan");
  const auto m_client = world.add_machine("client", lan);
  const auto m_server = world.add_machine("server", lan);
  ohpx::orb::Context& client = world.create_context(m_client);
  ohpx::orb::Context& server = world.create_context(m_server);
  server.enable_tcp();

  // Sync traffic over the simulated transport: rmi.calls, protocol
  // counters, per-context dispatch series.
  auto sim_ref =
      ohpx::orb::RefBuilder(server, std::make_shared<EchoServant>()).build();
  EchoStub sim(client, sim_ref);
  for (int i = 0; i < 8; ++i) sim.ping();

  // A registered breaker set so ohpx_breaker_state carries labelled
  // series (it stays registered for the stub's lifetime).
  ohpx::resilience::BreakerConfig breaker;
  breaker.failure_threshold = 3;
  sim.set_breaker_config(breaker);
  sim.ping();

  // An application error: rmi.errors / server.errors counters plus a
  // flight-recorder entry.
  try {
    sim.fail();
  } catch (const ohpx::RemoteError&) {
  }

  // Async traffic over tcp: the reactor samples loop lag and batch sizes,
  // and the continuation path records rmi.async.latency.
  auto tcp_ref = ohpx::orb::RefBuilder(server, std::make_shared<EchoServant>())
                     .tcp()
                     .build();
  EchoStub tcp(client, tcp_ref);
  for (int i = 0; i < 8; ++i) {
    auto future = tcp.call_async<std::string>(EchoServant::kReverse,
                                              std::string("introspect"));
    future.get();
  }

  const std::string payload = ohpx::introspect::render_exposition();
  if (out_path == nullptr) {
    std::cout << payload;
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "introspect_dump: cannot open " << out_path << "\n";
    return 1;
  }
  out << payload;
  out.close();
  std::cout << "introspect_dump: wrote " << payload.size() << " bytes to "
            << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: introspect_dump [--out FILE]\n"
                   "Drives traffic and emits a metrics exposition payload.\n";
      return 0;
    } else {
      std::cerr << "introspect_dump: unknown argument " << argv[i] << "\n";
      return 2;
    }
  }
  return run(out_path);
}
